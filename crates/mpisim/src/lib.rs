//! # parapre-mpisim
//!
//! An SPMD message-passing runtime over OS threads — the workspace's MPI
//! substitute (see DESIGN.md §2).
//!
//! The paper ran on two MPI machines (a fast-Ethernet Linux cluster and an
//! SGI Origin 3800). Rust's MPI bindings are immature and no cluster is
//! available here, so the distributed algorithms run as `P` threads
//! exchanging typed messages through unbounded std `mpsc` channels:
//!
//! * [`Universe::run`] spawns `P` ranks executing the same closure (SPMD),
//!   each holding a [`Comm`];
//! * point-to-point [`Comm::send`] / [`Comm::recv`] with tag matching and
//!   out-of-order buffering, exactly the subset of MPI semantics the
//!   paper's solvers need;
//! * collectives ([`Comm::allreduce_sum`], [`Comm::barrier`],
//!   [`Comm::gather_vec`], …) built **on top of point-to-point messages**
//!   along a binomial tree, so their cost shows up in the communication
//!   statistics just like on a real machine (`O(log P)` latency);
//! * per-rank [`CommStats`] (message and byte counts, aggregate and
//!   per-neighbor via [`Comm::peer_stats`]) feeding the α–β
//!   [`MachineModel`]s that emulate the paper's two platforms for the
//!   timing *shape* discussion; when a `parapre-trace` recorder is
//!   installed on the rank's thread, every send/receive additionally
//!   emits a structured comm event.
//!
//! Iteration counts — the paper's primary measurement — are entirely
//! deterministic under this substitution: the algebra does not care whether
//! ranks are processes on a cluster or threads in one address space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking receive waits before declaring a deadlock.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// What an installed fault hook does to one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message (it counts as sent, never arrives —
    /// the receiver's deadlock tripwire is the detection mechanism).
    Drop,
    /// Stall the sending rank for the given duration, then deliver.
    Delay(Duration),
}

/// What an installed fault hook does to a rank at a send-operation
/// boundary, *before* the message is considered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepFault {
    /// Proceed normally.
    Continue,
    /// Slow-rank jitter: stall for the given duration, then proceed.
    Jitter(Duration),
    /// Kill the rank: it panics with an [`InjectedFault`] payload, which
    /// [`Universe::try_run`] converts into a [`RankFailure`] whose
    /// `injected` field identifies the fault.
    Kill,
    /// Hang the rank: it stalls past every peer's receive timeout (so the
    /// peers observe [`CommError`] tripwires first), then dies like
    /// [`StepFault::Kill`].
    Hang,
}

/// Deterministic fault-injection hook consulted by every rank of a
/// [`Universe::try_run_with_faults`] launch.
///
/// Both callbacks receive the rank's 0-based **send-operation index** —
/// a counter each rank increments exactly once per [`Comm::send`] in
/// program order. Decisions keyed on `(rank, op)` are therefore
/// reproducible across runs regardless of thread scheduling; blocking or
/// polling receives do *not* advance the counter because their call counts
/// are timing-dependent under comm/compute overlap.
pub trait FaultHook: Send + Sync {
    /// Consulted at each send-operation boundary (kill/hang/jitter).
    fn on_step(&self, rank: usize, op: u64) -> StepFault;
    /// Consulted for each outgoing message surviving [`FaultHook::on_step`].
    fn on_send(&self, rank: usize, op: u64, to: usize, tag: u64, bytes: u64) -> SendFault;
}

/// The panic payload of a rank killed or hung by an installed
/// [`FaultHook`]; surfaces on [`RankFailure::injected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The rank the fault was injected into.
    pub rank: usize,
    /// The send-operation index at which it fired.
    pub op: u64,
    /// Kill or hang.
    pub kind: InjectedFaultKind,
}

/// Which terminal fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFaultKind {
    /// The rank was killed outright.
    Kill,
    /// The rank was hung past the deadlock tripwire, then terminated.
    Hang,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verb = match self.kind {
            InjectedFaultKind::Kill => "killed",
            InjectedFaultKind::Hang => "hung",
        };
        write!(
            f,
            "rank {} {} by fault injection at send op {}",
            self.rank, verb, self.op
        )
    }
}

/// A receive that timed out — the runtime's deadlock tripwire.
///
/// Carries everything a scheduler needs to report the failure without
/// re-running: the waiting rank, the peer and tag it blocked on, how long
/// it waited, and a drained summary of every envelope that *had* arrived
/// but matched nothing (the usual deadlock fingerprint: a tag or ordering
/// mismatch leaves its evidence parked in the pending queues).
///
/// [`Comm::recv`] panics with this error as the panic payload;
/// [`Universe::try_run`] catches it and hands it back as part of a
/// [`RankFailure`], so embedding layers (the `parapre-engine` scheduler)
/// can mark one job failed without poisoning the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// The rank whose receive timed out.
    pub rank: usize,
    /// The peer it was waiting on.
    pub peer: usize,
    /// The tag it was waiting for.
    pub tag: u64,
    /// How long it waited before giving up.
    pub waited: Duration,
    /// Human-readable summary of the pending (received-but-unmatched)
    /// envelope queues at the moment of the timeout.
    pub pending: String,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} timed out after {:?} receiving tag {:#x} from rank {} \
             (likely deadlock); queue state:{}",
            self.rank, self.waited, self.tag, self.peer, self.pending
        )
    }
}

impl std::error::Error for CommError {}

/// Why one rank of a [`Universe::try_run`] launch failed.
#[derive(Debug, Clone)]
pub struct RankFailure {
    /// The failing rank.
    pub rank: usize,
    /// Formatted panic/deadlock message.
    pub message: String,
    /// The structured receive-timeout error when the failure was a
    /// communication deadlock (`None` for ordinary panics).
    pub comm_error: Option<CommError>,
    /// The structured fault description when the failure was injected by an
    /// installed [`FaultHook`] (`None` for organic failures) — the signal a
    /// recovery layer uses to tell a deliberately dead rank from its
    /// secondary deadlock victims.
    pub injected: Option<InjectedFault>,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} failed: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankFailure {}

fn failure_from_panic(rank: usize, payload: Box<dyn std::any::Any + Send>) -> RankFailure {
    let (message, comm_error, injected) = match payload.downcast::<CommError>() {
        Ok(e) => (e.to_string(), Some(*e), None),
        Err(payload) => match payload.downcast::<InjectedFault>() {
            Ok(f) => (f.to_string(), None, Some(*f)),
            Err(payload) => match payload.downcast::<String>() {
                Ok(s) => (*s, None, None),
                Err(payload) => match payload.downcast::<&'static str>() {
                    Ok(s) => ((*s).to_string(), None, None),
                    Err(_) => (
                        "rank panicked with a non-string payload".to_string(),
                        None,
                        None,
                    ),
                },
            },
        },
    };
    RankFailure {
        rank,
        message,
        comm_error,
        injected,
    }
}

/// A typed message payload.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A vector of floats (solver data).
    F64s(Vec<f64>),
    /// A vector of indices (layout/handshake data).
    Usizes(Vec<usize>),
}

impl Payload {
    /// Approximate wire size in bytes.
    pub fn n_bytes(&self) -> u64 {
        match self {
            Payload::F64s(v) => 8 * v.len() as u64,
            Payload::Usizes(v) => 8 * v.len() as u64,
        }
    }

    /// Unwraps floats; panics on type mismatch (protocol error).
    pub fn into_f64s(self) -> Vec<f64> {
        match self {
            Payload::F64s(v) => v,
            Payload::Usizes(_) => panic!("expected F64s payload"),
        }
    }

    /// Unwraps indices; panics on type mismatch (protocol error).
    pub fn into_usizes(self) -> Vec<usize> {
        match self {
            Payload::Usizes(v) => v,
            Payload::F64s(_) => panic!("expected Usizes payload"),
        }
    }
}

#[derive(Debug)]
struct Envelope {
    from: usize,
    tag: u64,
    payload: Payload,
}

/// Per-rank communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Messages sent by this rank.
    pub msgs_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Microseconds spent blocked inside receive waits. Only accumulated
    /// while the live metrics layer is enabled
    /// ([`parapre_metrics::enabled`]); the `LoadReport` imbalance
    /// attribution consumes it as per-rank comm-wait seconds.
    pub wait_us: u64,
}

impl CommStats {
    /// Models the communication time of this rank under `machine`:
    /// `Σ (α + bytes/β)` over sent messages.
    pub fn modeled_comm_seconds(&self, machine: &MachineModel) -> f64 {
        self.msgs_sent as f64 * machine.latency + self.bytes_sent as f64 * machine.seconds_per_byte
    }

    /// Field-wise difference `after − before` (saturating), for measuring
    /// the traffic of a code region between two [`Comm::stats`] snapshots.
    pub fn delta(after: &CommStats, before: &CommStats) -> CommStats {
        CommStats {
            msgs_sent: after.msgs_sent.saturating_sub(before.msgs_sent),
            bytes_sent: after.bytes_sent.saturating_sub(before.bytes_sent),
            msgs_recv: after.msgs_recv.saturating_sub(before.msgs_recv),
            bytes_recv: after.bytes_recv.saturating_sub(before.bytes_recv),
            wait_us: after.wait_us.saturating_sub(before.wait_us),
        }
    }
}

impl std::ops::Sub for CommStats {
    type Output = CommStats;
    fn sub(self, rhs: CommStats) -> CommStats {
        CommStats::delta(&self, &rhs)
    }
}

/// An α–β network/compute model of a parallel platform.
#[derive(Debug, Clone, Copy)]
pub struct MachineModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-message latency α in seconds.
    pub latency: f64,
    /// Inverse bandwidth β⁻¹ in seconds per byte.
    pub seconds_per_byte: f64,
    /// Relative single-core compute speed (1.0 = the paper's Pentium III
    /// cluster node).
    pub compute_scale: f64,
    /// Background-load multiplier applied to the modeled total (the paper
    /// notes the Origin 3800 was "often heavily loaded").
    pub load_factor: f64,
    /// Partitioner RNG seed tied to the platform (the paper observed the
    /// two machines' random number generators produce different partitions).
    pub partition_seed: u64,
}

impl MachineModel {
    /// The paper's low-end Linux cluster: 1 GHz Pentium III nodes on fast
    /// (100 Mbit) Ethernet, exclusive access.
    pub fn linux_cluster() -> Self {
        MachineModel {
            name: "LinuxCluster",
            latency: 60e-6,
            seconds_per_byte: 1.0 / 12.5e6,
            compute_scale: 1.0,
            load_factor: 1.0,
            partition_seed: 0x11,
        }
    }

    /// The paper's SGI Origin 3800: 500 MHz R14000, fast NUMA interconnect,
    /// but heavily loaded during the experiments.
    pub fn origin_3800() -> Self {
        MachineModel {
            name: "Origin3800",
            latency: 4e-6,
            seconds_per_byte: 1.0 / 300e6,
            compute_scale: 0.9,
            load_factor: 6.0,
            partition_seed: 0x2222,
        }
    }

    /// Modeled wall-clock for a rank that spent `compute_seconds` computing
    /// (measured on the host) and communicated per `stats`.
    pub fn modeled_total(&self, compute_seconds: f64, stats: &CommStats) -> f64 {
        self.load_factor * (compute_seconds / self.compute_scale + stats.modeled_comm_seconds(self))
    }
}

/// The SPMD launcher.
pub struct Universe;

impl Universe {
    /// Runs `f` on `n_ranks` threads, each with its own [`Comm`]; returns
    /// the per-rank results ordered by rank.
    ///
    /// The closure may borrow from the caller (scoped threads), so meshes
    /// and matrices can be shared read-only across ranks — mirroring how an
    /// MPI code would read the same input files.
    ///
    /// # Panics
    /// Panics if any rank panics or deadlocks; use [`Universe::try_run`] to
    /// contain failures instead.
    pub fn run<F, T>(n_ranks: usize, f: F) -> Vec<T>
    where
        F: Fn(&mut Comm) -> T + Sync,
        T: Send,
    {
        Self::run_with_timeout(n_ranks, RECV_TIMEOUT, f)
    }

    /// [`Universe::run`] with an explicit deadlock-tripwire timeout for
    /// every blocking receive (tests of failure paths want milliseconds,
    /// not the default 60 s).
    pub fn run_with_timeout<F, T>(n_ranks: usize, recv_timeout: Duration, f: F) -> Vec<T>
    where
        F: Fn(&mut Comm) -> T + Sync,
        T: Send,
    {
        Self::try_run_with_timeout(n_ranks, recv_timeout, f)
            .into_iter()
            .map(|r| r.unwrap_or_else(|failure| panic!("{failure}")))
            .collect()
    }

    /// Runs `f` on `n_ranks` threads, catching per-rank panics and
    /// deadlocks instead of propagating them.
    ///
    /// Every rank produces either its result or a [`RankFailure`]
    /// describing why it died (with the structured [`CommError`] attached
    /// for receive timeouts). The launch itself never panics, so an
    /// embedding scheduler can mark one job failed and keep serving others.
    pub fn try_run<F, T>(n_ranks: usize, f: F) -> Vec<Result<T, RankFailure>>
    where
        F: Fn(&mut Comm) -> T + Sync,
        T: Send,
    {
        Self::try_run_with_timeout(n_ranks, RECV_TIMEOUT, f)
    }

    /// [`Universe::try_run`] with an explicit receive timeout.
    pub fn try_run_with_timeout<F, T>(
        n_ranks: usize,
        recv_timeout: Duration,
        f: F,
    ) -> Vec<Result<T, RankFailure>>
    where
        F: Fn(&mut Comm) -> T + Sync,
        T: Send,
    {
        Self::try_run_with_faults(n_ranks, recv_timeout, None, f)
    }

    /// [`Universe::try_run_with_timeout`] with a deterministic fault hook
    /// installed on every rank's communicator: the same closure runs under
    /// a reproducible schedule of message drops/delays, slow-rank jitter,
    /// and rank kills/hangs (see [`FaultHook`]). Injected terminal faults
    /// come back as [`RankFailure`]s with [`RankFailure::injected`] set;
    /// their secondary victims surface as ordinary [`CommError`] timeouts.
    pub fn try_run_with_faults<F, T>(
        n_ranks: usize,
        recv_timeout: Duration,
        faults: Option<Arc<dyn FaultHook>>,
        f: F,
    ) -> Vec<Result<T, RankFailure>>
    where
        F: Fn(&mut Comm) -> T + Sync,
        T: Send,
    {
        Self::try_run_with_threads(n_ranks, recv_timeout, faults, None, f)
    }

    /// The most general launcher: [`Universe::try_run_with_faults`] plus an
    /// explicit in-rank thread budget.
    ///
    /// Every rank thread runs under a nested-parallelism budget
    /// (`parapre_sparse::parallel`) so data-parallel kernels inside a rank
    /// (`Csr::spmv_par`, leveled sweeps, `ops::dot_par`) share the machine
    /// instead of oversubscribing it P-fold. The budget is
    /// `threads_per_rank` when given, else the `PARAPRE_THREADS`
    /// environment override, else `⌊outer / n_ranks⌋` (min 1) — where
    /// `outer` is the budget of the *launching* thread, so a nested
    /// universe (e.g. a degraded-mode re-launch from inside a rank) can
    /// never exceed the budget of the rank that launched it.
    pub fn try_run_with_threads<F, T>(
        n_ranks: usize,
        recv_timeout: Duration,
        faults: Option<Arc<dyn FaultHook>>,
        threads_per_rank: Option<usize>,
        f: F,
    ) -> Vec<Result<T, RankFailure>>
    where
        F: Fn(&mut Comm) -> T + Sync,
        T: Send,
    {
        assert!(n_ranks >= 1);
        // Resolved on the launcher thread: the share is relative to *its*
        // budget, which bounds nested universes transitively.
        let rank_threads = parapre_sparse::parallel::rank_budget(n_ranks, threads_per_rank);
        // Channel matrix: tx[dst][src] sends src → dst.
        let mut txs: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(n_ranks);
        let mut rxs: Vec<Vec<Receiver<Envelope>>> = Vec::with_capacity(n_ranks);
        for _dst in 0..n_ranks {
            let mut row_tx = Vec::with_capacity(n_ranks);
            let mut row_rx = Vec::with_capacity(n_ranks);
            for _src in 0..n_ranks {
                let (tx, rx) = channel();
                row_tx.push(tx);
                row_rx.push(rx);
            }
            txs.push(row_tx);
            rxs.push(row_rx);
        }
        // Rank r needs: senders to every dst (column r of txs) and its own
        // receiver row.
        let mut comms: Vec<Comm> = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, rx_row)| Comm {
                rank,
                size: n_ranks,
                to: txs.iter().map(|row| row[rank].clone()).collect(),
                from: rx_row,
                pending: RefCell::new((0..n_ranks).map(|_| Vec::new()).collect()),
                stats: CommStats::default(),
                peer_stats: vec![CommStats::default(); n_ranks],
                recv_timeout,
                pool: RefCell::new(Vec::new()),
                faults: faults.clone(),
                send_ops: 0,
            })
            .collect();
        drop(txs);

        // The Comms outlive every thread (owned by this frame), so a send
        // to a rank that already failed parks harmlessly in its channel
        // instead of erroring — failures stay contained to their own rank.
        let f = &f;
        let mut out: Vec<Option<Result<T, RankFailure>>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter_mut()
                .map(|comm| {
                    scope.spawn(move || {
                        let rank = comm.rank();
                        // Scope the rank's share of the machine: kernels
                        // inside `f` fan out at most `rank_threads` wide.
                        let _budget = parapre_sparse::parallel::enter_budget(rank_threads);
                        catch_unwind(AssertUnwindSafe(|| f(comm)))
                            .map_err(|payload| failure_from_panic(rank, payload))
                    })
                })
                .collect();
            for (rank, (slot, h)) in out.iter_mut().zip(handles).enumerate() {
                *slot = Some(
                    h.join()
                        .unwrap_or_else(|payload| Err(failure_from_panic(rank, payload))),
                );
            }
        });
        out.into_iter()
            .map(|t| t.expect("all ranks joined"))
            .collect()
    }
}

/// A rank's communicator (not shareable across threads; one per rank).
pub struct Comm {
    rank: usize,
    size: usize,
    to: Vec<Sender<Envelope>>,
    from: Vec<Receiver<Envelope>>,
    /// Out-of-order messages parked per source rank.
    pending: RefCell<Vec<Vec<Envelope>>>,
    stats: CommStats,
    /// Per-neighbor send/recv accounting (indexed by peer rank).
    peer_stats: Vec<CommStats>,
    /// Deadlock tripwire for blocking receives (per-universe, not global,
    /// so concurrently running universes can use different settings).
    recv_timeout: Duration,
    /// Free float buffers for [`Comm::send_f64s_from`]; receivers feed
    /// delivered buffers back via [`Comm::recycle_f64s`], so steady-state
    /// halo exchanges allocate nothing per message.
    pool: RefCell<Vec<Vec<f64>>>,
    /// Deterministic fault hook installed by
    /// [`Universe::try_run_with_faults`] (`None` in normal launches).
    faults: Option<Arc<dyn FaultHook>>,
    /// This rank's 0-based send-operation counter — the deterministic clock
    /// fault decisions are keyed on.
    send_ops: u64,
}

/// Upper bound on pooled free buffers per rank (beyond this, recycled
/// buffers are simply dropped).
const POOL_CAP: usize = 64;

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of the communication counters.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Per-neighbor communication counters, indexed by peer rank.
    pub fn peer_stats(&self) -> &[CommStats] {
        &self.peer_stats
    }

    /// Sends `payload` to rank `to` under `tag` (non-blocking, buffered).
    ///
    /// When a [`FaultHook`] is installed (see
    /// [`Universe::try_run_with_faults`]) it is consulted here: the message
    /// may be dropped or delayed, and the rank itself may be jittered,
    /// killed, or hung at this operation boundary. Dropped messages still
    /// count as sent — they left this rank; the wire ate them.
    pub fn send(&mut self, to: usize, tag: u64, payload: Payload) {
        assert!(to < self.size, "send to rank {to} of {}", self.size);
        let bytes = payload.n_bytes();
        let op = self.send_ops;
        self.send_ops += 1;
        if let Some(hook) = self.faults.clone() {
            match hook.on_step(self.rank, op) {
                StepFault::Continue => {}
                StepFault::Jitter(d) => std::thread::sleep(d),
                StepFault::Kill => {
                    parapre_trace::counter(parapre_trace::counters::FAULT_KILL, 1);
                    std::panic::panic_any(InjectedFault {
                        rank: self.rank,
                        op,
                        kind: InjectedFaultKind::Kill,
                    });
                }
                StepFault::Hang => {
                    parapre_trace::counter(parapre_trace::counters::FAULT_HANG, 1);
                    // Stall past every peer's tripwire so they observe the
                    // hang as CommError timeouts, then die so the scoped
                    // join completes.
                    std::thread::sleep(self.recv_timeout + Duration::from_millis(50));
                    std::panic::panic_any(InjectedFault {
                        rank: self.rank,
                        op,
                        kind: InjectedFaultKind::Hang,
                    });
                }
            }
            match hook.on_send(self.rank, op, to, tag, bytes) {
                SendFault::Deliver => {}
                SendFault::Drop => {
                    self.stats.msgs_sent += 1;
                    self.stats.bytes_sent += bytes;
                    self.peer_stats[to].msgs_sent += 1;
                    self.peer_stats[to].bytes_sent += bytes;
                    parapre_trace::counter(parapre_trace::counters::FAULT_DROP, 1);
                    return;
                }
                SendFault::Delay(d) => {
                    parapre_trace::counter(parapre_trace::counters::FAULT_DELAY, 1);
                    std::thread::sleep(d);
                }
            }
        }
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        self.peer_stats[to].msgs_sent += 1;
        self.peer_stats[to].bytes_sent += bytes;
        parapre_trace::comm(parapre_trace::CommDir::Send, to, tag, bytes);
        self.to[to]
            .send(Envelope {
                from: self.rank,
                tag,
                payload,
            })
            .expect("receiver alive for the duration of Universe::run");
    }

    /// Number of send operations this rank has performed — the
    /// deterministic per-rank clock that fault schedules are keyed on.
    pub fn send_ops(&self) -> u64 {
        self.send_ops
    }

    fn note_recv(&mut self, from: usize, tag: u64, bytes: u64) {
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += bytes;
        self.peer_stats[from].msgs_recv += 1;
        self.peer_stats[from].bytes_recv += bytes;
        parapre_trace::comm(parapre_trace::CommDir::Recv, from, tag, bytes);
    }

    /// Dumps the pending (received-but-unmatched) message queues — the
    /// deadlock diagnostic shown when a receive times out.
    fn pending_dump(&self) -> String {
        let pending = self.pending.borrow();
        let mut out = String::new();
        let mut any = false;
        for (src, queue) in pending.iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            any = true;
            let tags: Vec<String> = queue
                .iter()
                .take(16)
                .map(|e| format!("tag {:#x} ({} B)", e.tag, e.payload.n_bytes()))
                .collect();
            out.push_str(&format!(
                "\n  pending from rank {src}: {} message(s): {}{}",
                queue.len(),
                tags.join(", "),
                if queue.len() > 16 { ", …" } else { "" }
            ));
        }
        if !any {
            out.push_str("\n  (no pending messages parked on this rank)");
        }
        out
    }

    /// Receives the next message from `from` with matching `tag`, buffering
    /// any other tags that arrive first.
    ///
    /// # Panics
    /// Panics with a [`CommError`] payload after [`Comm::recv_timeout`]
    /// elapses without a matching message (deadlock tripwire), so
    /// [`Universe::try_run`] can recover the structured diagnostic.
    pub fn recv(&mut self, from: usize, tag: u64) -> Payload {
        match self.recv_checked(from, tag) {
            Ok(payload) => payload,
            Err(err) => std::panic::panic_any(err),
        }
    }

    /// The deadlock-tripwire timeout applied to this rank's receives.
    pub fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// Like [`Comm::recv`], but reports a timeout as a structured
    /// [`CommError`] (naming rank, peer, tag, and the pending-envelope
    /// summary) instead of panicking.
    pub fn recv_checked(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        assert!(from < self.size);
        // Check the parked messages first — a parked hit is not a wait.
        if let Some(env) = self.take_parked(from, tag) {
            self.note_recv(from, tag, env.payload.n_bytes());
            return Ok(env.payload);
        }
        // Time only the blocking portion, and only while the metrics
        // layer is on: one `Instant` pair per blocked receive.
        let t0 = parapre_metrics::enabled().then(std::time::Instant::now);
        let out = self.recv_blocking(from, tag);
        if let Some(t0) = t0 {
            let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.stats.wait_us += us;
            self.peer_stats[from].wait_us += us;
        }
        out
    }

    /// The blocking tail of [`Comm::recv_checked`]: waits on the channel
    /// from `from` until the wanted tag arrives or the tripwire fires.
    fn recv_blocking(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        loop {
            let env = match self.from[from].recv_timeout(self.recv_timeout) {
                Ok(env) => env,
                Err(_) => {
                    // Pull everything that did arrive (on any channel) into
                    // the pending queues so the diagnostic sees it…
                    self.drain_channels();
                    // …and double-check the wanted message was not simply
                    // racing the timeout.
                    if let Some(env) = self.take_parked(from, tag) {
                        self.note_recv(from, tag, env.payload.n_bytes());
                        return Ok(env.payload);
                    }
                    return Err(CommError {
                        rank: self.rank,
                        peer: from,
                        tag,
                        waited: self.recv_timeout,
                        pending: self.pending_dump(),
                    });
                }
            };
            debug_assert_eq!(env.from, from);
            if env.tag == tag {
                self.note_recv(from, tag, env.payload.n_bytes());
                return Ok(env.payload);
            }
            self.pending.borrow_mut()[from].push(env);
        }
    }

    /// Removes and returns the first parked envelope from `from` matching
    /// `tag`, if any.
    fn take_parked(&self, from: usize, tag: u64) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        pending[from]
            .iter()
            .position(|e| e.tag == tag)
            .map(|pos| pending[from].remove(pos))
    }

    /// Moves every envelope sitting in the incoming channels into the
    /// pending queues (non-blocking) so diagnostics reflect all arrivals.
    fn drain_channels(&mut self) {
        let mut pending = self.pending.borrow_mut();
        for (src, rx) in self.from.iter().enumerate() {
            while let Ok(env) = rx.try_recv() {
                pending[src].push(env);
            }
        }
    }

    /// Non-blocking receive: returns the next message from `from` matching
    /// `tag` if one has already arrived, `None` otherwise. Messages with
    /// other tags pulled off the channel are parked for later receives,
    /// exactly as in [`Comm::recv`].
    ///
    /// This is the overlap primitive: an overlapped SpMV polls its
    /// neighbours with `try_recv` after finishing interior rows and only
    /// blocks (with the usual deadlock tripwire) on the stragglers.
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Option<Payload> {
        assert!(from < self.size);
        if let Some(env) = self.take_parked(from, tag) {
            self.note_recv(from, tag, env.payload.n_bytes());
            return Some(env.payload);
        }
        loop {
            let env = match self.from[from].try_recv() {
                Ok(env) => env,
                Err(_) => return None,
            };
            debug_assert_eq!(env.from, from);
            if env.tag == tag {
                self.note_recv(from, tag, env.payload.n_bytes());
                return Some(env.payload);
            }
            self.pending.borrow_mut()[from].push(env);
        }
    }

    /// Convenience: non-blocking receive of a float vector.
    pub fn try_recv_f64s(&mut self, from: usize, tag: u64) -> Option<Vec<f64>> {
        self.try_recv(from, tag).map(Payload::into_f64s)
    }

    /// Convenience: send a float vector.
    pub fn send_f64s(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        self.send(to, tag, Payload::F64s(data));
    }

    /// Sends a float slice by **copying into a pooled buffer** instead of
    /// allocating a fresh `Vec` per message — the steady-state send path of
    /// halo exchanges. Buffers come back to the pool when the application
    /// returns received vectors via [`Comm::recycle_f64s`], so buffers
    /// circulate between neighbours after a warm-up round.
    pub fn send_f64s_from(&mut self, to: usize, tag: u64, data: &[f64]) {
        let mut buf = match self.pool.borrow_mut().pop() {
            Some(b) => {
                parapre_trace::counter(parapre_trace::counters::POOL_REUSE, 1);
                b
            }
            None => {
                parapre_trace::counter(parapre_trace::counters::POOL_ALLOC, 1);
                Vec::with_capacity(data.len())
            }
        };
        buf.clear();
        buf.extend_from_slice(data);
        self.send(to, tag, Payload::F64s(buf));
    }

    /// Returns a float buffer (typically one just delivered by a receive)
    /// to this rank's send pool for reuse by [`Comm::send_f64s_from`].
    pub fn recycle_f64s(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        let mut pool = self.pool.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    }

    /// Convenience: receive a float vector.
    pub fn recv_f64s(&mut self, from: usize, tag: u64) -> Vec<f64> {
        self.recv(from, tag).into_f64s()
    }

    /// Convenience: send an index vector.
    pub fn send_usizes(&mut self, to: usize, tag: u64, data: Vec<usize>) {
        self.send(to, tag, Payload::Usizes(data));
    }

    /// Convenience: receive an index vector.
    pub fn recv_usizes(&mut self, from: usize, tag: u64) -> Vec<usize> {
        self.recv(from, tag).into_usizes()
    }

    // --- Collectives (binomial tree over point-to-point) ---------------

    /// Element-wise all-reduce (sum) of a vector, in place, identical result
    /// on all ranks. Reduction order is rank-order at every tree node, so
    /// the result is deterministic.
    pub fn allreduce_sum_vec(&mut self, x: &mut [f64], tag: u64) {
        // Reduce to rank 0 up the binomial tree.
        let mut span = 1;
        while span < self.size {
            if self.rank.is_multiple_of(2 * span) {
                let partner = self.rank + span;
                if partner < self.size {
                    let data = self.recv_f64s(partner, tag);
                    assert_eq!(data.len(), x.len(), "allreduce length mismatch");
                    for (xi, di) in x.iter_mut().zip(&data) {
                        *xi += di;
                    }
                }
            } else if self.rank % (2 * span) == span {
                let partner = self.rank - span;
                self.send_f64s(partner, tag, x.to_vec());
                break;
            }
            span *= 2;
        }
        self.bcast_vec_from_zero(x, tag.wrapping_add(1));
    }

    /// Broadcast `x` from rank 0 down the binomial tree (in place).
    pub fn bcast_vec_from_zero(&mut self, x: &mut [f64], tag: u64) {
        // Receive once from the parent, then forward to children.
        if self.rank != 0 {
            let data = self.recv_f64s(parent_of(self.rank), tag);
            x.copy_from_slice(&data);
        }
        let mut child_span = next_pow2(self.size);
        while child_span >= 1 {
            let child = self.rank + child_span;
            if child < self.size && is_child(self.rank, child) {
                self.send_f64s(child, tag, x.to_vec());
            }
            if child_span == 1 {
                break;
            }
            child_span /= 2;
        }
    }

    /// Scalar all-reduce (sum).
    pub fn allreduce_sum(&mut self, v: f64, tag: u64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum_vec(&mut buf, tag);
        buf[0]
    }

    /// Scalar all-reduce (max).
    pub fn allreduce_max(&mut self, v: f64, tag: u64) -> f64 {
        // Reuse the sum tree with a max combiner via gather+bcast: encode by
        // gathering to 0.
        let all = self.gather_vec(0, &[v], tag);
        let mut m = [v];
        if self.rank == 0 {
            m[0] = all
                .expect("root gathers")
                .iter()
                .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        }
        self.bcast_vec_from_zero(&mut m, tag.wrapping_add(7));
        m[0]
    }

    /// Logical AND across ranks (e.g. "all converged").
    pub fn all_land(&mut self, v: bool, tag: u64) -> bool {
        self.allreduce_sum(if v { 0.0 } else { 1.0 }, tag) == 0.0
    }

    /// Collective agreement check: `true` iff every rank passed the same
    /// `v`. Used by topology migrations to detect torn plans — each rank
    /// hashes its view of the new ownership map and the universe commits
    /// only if all hashes coincide. Implemented as two exact reductions on
    /// the 32-bit halves (f64 holds 32-bit integers exactly), so it costs
    /// two `allreduce_max`-shaped rounds at `tag` and `tag + 1`.
    pub fn all_agree_u64(&mut self, v: u64, tag: u64) -> bool {
        let lo = (v & 0xFFFF_FFFF) as f64;
        let hi = (v >> 32) as f64;
        let lo_max = self.allreduce_max(lo, tag);
        let hi_max = self.allreduce_max(hi, tag + 1);
        // Everyone agrees iff everyone equals the max on both halves.
        self.all_land(lo == lo_max && hi == hi_max, tag + 2)
    }

    /// Gathers per-rank vectors to `root` (concatenated rank-by-rank);
    /// `None` on non-root ranks.
    pub fn gather_vec(&mut self, root: usize, data: &[f64], tag: u64) -> Option<Vec<f64>> {
        if self.rank == root {
            let mut out = Vec::new();
            for r in 0..self.size {
                if r == self.rank {
                    out.extend_from_slice(data);
                } else {
                    out.extend(self.recv_f64s(r, tag));
                }
            }
            Some(out)
        } else {
            self.send_f64s(root, tag, data.to_vec());
            None
        }
    }

    /// Synchronizes all ranks (tree reduce + broadcast of a dummy scalar).
    pub fn barrier(&mut self, tag: u64) {
        let _ = self.allreduce_sum(0.0, tag);
    }
}

/// Parent of `rank` in the binomial broadcast tree rooted at 0.
fn parent_of(rank: usize) -> usize {
    debug_assert!(rank > 0);
    let hsb = usize::BITS as usize - 1 - rank.leading_zeros() as usize;
    rank & !(1usize << hsb)
}

/// True when `child = rank + 2^k` for some `k` with `rank < 2^k` — i.e.
/// `child`'s parent is `rank`.
fn is_child(rank: usize, child: usize) -> bool {
    child > rank && parent_of(child) == rank
}

/// Smallest power of two ≥ `n`.
fn next_pow2(n: usize) -> usize {
    let mut p = 1;
    while p < n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_size() {
        let out = Universe::run(4, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f64s(1, 7, vec![1.0, 2.0, 3.0]);
                c.recv_f64s(1, 8)
            } else {
                let got = c.recv_f64s(0, 7);
                let doubled: Vec<f64> = got.iter().map(|v| 2.0 * v).collect();
                c.send_f64s(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn pooled_sends_roundtrip_and_recycle() {
        let out = Universe::run(2, |c| {
            let peer = 1 - c.rank();
            let mut sum = 0.0;
            for round in 0..4 {
                let data = [round as f64, c.rank() as f64];
                c.send_f64s_from(peer, 9, &data);
                let got = c.recv_f64s(peer, 9);
                sum += got[0] + got[1];
                // Hand the delivered buffer back so later rounds reuse it.
                c.recycle_f64s(got);
            }
            (sum, c.stats().msgs_sent, c.stats().msgs_recv)
        });
        for (rank, (sum, sent, recv)) in out.into_iter().enumerate() {
            // Each round delivers [round, peer_rank].
            let peer = 1 - rank;
            assert_eq!(sum, (0.0 + 1.0 + 2.0 + 3.0) + 4.0 * peer as f64);
            assert_eq!(sent, 4);
            assert_eq!(recv, 4);
        }
    }

    #[test]
    fn try_recv_none_then_some_and_parks_other_tags() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                // Nothing sent yet: rank 1 polls tag 7 and must see None
                // before this send. Gate on an explicit handshake.
                let go = c.recv_f64s(1, 1);
                assert_eq!(go, vec![1.0]);
                c.send_f64s(1, 8, vec![-1.0]); // unmatched tag, must be parked
                c.send_f64s(1, 7, vec![42.0]);
                0.0
            } else {
                assert!(c.try_recv_f64s(0, 7).is_none(), "no message sent yet");
                c.send_f64s(0, 1, vec![1.0]);
                // Poll until the tagged message lands.
                let got = loop {
                    if let Some(v) = c.try_recv_f64s(0, 7) {
                        break v;
                    }
                    std::thread::yield_now();
                };
                // The out-of-order tag 8 message was parked, not lost.
                let parked = c.recv_f64s(0, 8);
                got[0] + parked[0]
            }
        });
        assert_eq!(out[1], 41.0);
    }

    #[test]
    fn rank_threads_get_their_budget_share() {
        use parapre_sparse::parallel;
        // Pin the launcher's budget so the test is independent of the
        // machine's core count and of any PARAPRE_THREADS in the env.
        let _outer = parallel::enter_budget(8);
        let out = Universe::try_run_with_threads(2, RECV_TIMEOUT, None, Some(3), |_c| {
            parallel::current_budget()
        });
        for r in out {
            assert_eq!(r.unwrap(), 3);
        }
        // The launcher's own budget is untouched.
        assert_eq!(parallel::current_budget(), 8);
    }

    #[test]
    fn default_share_is_outer_over_ranks() {
        use parapre_sparse::parallel;
        let _outer = parallel::enter_budget(8);
        let out = Universe::try_run_with_threads(3, RECV_TIMEOUT, None, None, |_c| {
            parallel::current_budget()
        });
        // Explicit `threads_per_rank` is None, so each rank gets
        // ⌊8 / 3⌋ = 2 unless PARAPRE_THREADS overrides the share.
        let want = parallel::rank_budget_from(8, 3, parallel::env_threads());
        for r in out {
            assert_eq!(r.unwrap(), want);
        }
    }

    #[test]
    fn many_ranks_on_few_cores_get_at_least_one() {
        use parapre_sparse::parallel;
        let _outer = parallel::enter_budget(2);
        let out = Universe::try_run_with_threads(4, RECV_TIMEOUT, None, None, |_c| {
            parallel::current_budget()
        });
        let want = parallel::rank_budget_from(2, 4, parallel::env_threads());
        assert!(want >= 1);
        for r in out {
            assert_eq!(r.unwrap(), want);
        }
    }

    #[test]
    fn nested_universe_never_exceeds_outer_budget() {
        use parapre_sparse::parallel;
        let _outer = parallel::enter_budget(4);
        let out = Universe::try_run_with_threads(2, RECV_TIMEOUT, None, None, |_c| {
            // Degraded-mode style re-launch from inside a rank: even an
            // absurd explicit request is clamped to this rank's budget.
            let inner = Universe::try_run_with_threads(2, RECV_TIMEOUT, None, Some(64), |_c2| {
                parallel::current_budget()
            });
            let mine = parallel::current_budget();
            (mine, inner.into_iter().map(|r| r.unwrap()).max().unwrap())
        });
        for r in out {
            let (mine, inner_max) = r.unwrap();
            assert!(inner_max <= mine, "nested {inner_max} > outer {mine}");
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f64s(1, 100, vec![1.0]);
                c.send_f64s(1, 200, vec![2.0]);
                vec![]
            } else {
                // Receive in reverse tag order.
                let b = c.recv_f64s(0, 200);
                let a = c.recv_f64s(0, 100);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for p in 1..=9 {
            let out = Universe::run(p, |c| c.allreduce_sum(c.rank() as f64 + 1.0, 5));
            let expect = (p * (p + 1)) as f64 / 2.0;
            assert!(out.iter().all(|&v| v == expect), "p={p}: {out:?}");
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Universe::run(5, |c| {
            let mut x = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_vec(&mut x, 40);
            x
        });
        for v in out {
            assert_eq!(v, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn allreduce_deterministic_order() {
        // Summation order is fixed by the tree: repeated runs bit-match.
        let vals = [0.1, 0.2, 0.3, 0.4, 0.7, 0.9, 1.3];
        let run = || Universe::run(7, |c| c.allreduce_sum(vals[c.rank()], 3));
        assert_eq!(run(), run());
    }

    #[test]
    fn allreduce_max_works() {
        let out = Universe::run(6, |c| c.allreduce_max((c.rank() as f64 - 2.5).abs(), 9));
        assert!(out.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let out = Universe::run(4, |c| c.gather_vec(0, &[c.rank() as f64; 2], 11));
        assert_eq!(
            out[0].as_ref().unwrap(),
            &vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
        );
        assert!(out[1].is_none());
    }

    #[test]
    fn bcast_from_zero() {
        let out = Universe::run(8, |c| {
            let mut x = if c.rank() == 0 {
                vec![42.0, 7.0]
            } else {
                vec![0.0, 0.0]
            };
            c.bcast_vec_from_zero(&mut x, 21);
            x
        });
        assert!(out.iter().all(|v| v == &vec![42.0, 7.0]));
    }

    #[test]
    fn land_detects_any_false() {
        let out = Universe::run(5, |c| c.all_land(c.rank() != 3, 33));
        assert!(out.iter().all(|&v| !v));
        let out = Universe::run(5, |c| c.all_land(true, 34));
        assert!(out.iter().all(|&v| v));
    }

    #[test]
    fn agree_detects_torn_values() {
        // All equal — including values with distinct high and low halves.
        let v = (7u64 << 40) | 12345;
        let out = Universe::run(4, |c| c.all_agree_u64(v, 40));
        assert!(out.iter().all(|&ok| ok));
        // One rank disagrees only in the high half.
        let out = Universe::run(4, |c| {
            let mine = if c.rank() == 2 { v ^ (1 << 37) } else { v };
            c.all_agree_u64(mine, 50)
        });
        assert!(out.iter().all(|&ok| !ok));
        // One rank disagrees only in the low half.
        let out = Universe::run(4, |c| {
            let mine = if c.rank() == 1 { v ^ 1 } else { v };
            c.all_agree_u64(mine, 60)
        });
        assert!(out.iter().all(|&ok| !ok));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f64s(1, 1, vec![0.0; 10]);
            } else {
                let _ = c.recv_f64s(0, 1);
            }
            c.stats()
        });
        assert_eq!(out[0].msgs_sent, 1);
        assert_eq!(out[0].bytes_sent, 80);
        assert_eq!(out[1].msgs_recv, 1);
        assert_eq!(out[1].bytes_recv, 80);
    }

    #[test]
    fn machine_models_differ_as_expected() {
        let cluster = MachineModel::linux_cluster();
        let origin = MachineModel::origin_3800();
        let stats = CommStats {
            msgs_sent: 1000,
            bytes_sent: 8_000_000,
            ..Default::default()
        };
        // The cluster pays far more for the same traffic (latency+bandwidth).
        assert!(stats.modeled_comm_seconds(&cluster) > 10.0 * stats.modeled_comm_seconds(&origin));
        // …but the loaded Origin multiplies everything.
        assert!(origin.load_factor > cluster.load_factor);
        assert_ne!(cluster.partition_seed, origin.partition_seed);
    }

    #[test]
    fn scoped_borrowing_of_shared_data() {
        let shared: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let out = Universe::run(3, |c| shared[c.rank()]);
        assert_eq!(out, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn deadlock_reports_rank_peer_and_tag() {
        let out = Universe::try_run_with_timeout(2, Duration::from_millis(50), |c| {
            if c.rank() == 0 {
                // Nobody ever sends tag 0x42: deterministic deadlock.
                let _ = c.recv_f64s(1, 0x42);
            }
        });
        assert!(out[1].is_ok(), "rank 1 returns normally");
        let failure = out[0].as_ref().expect_err("rank 0 deadlocks");
        assert_eq!(failure.rank, 0);
        let err = failure.comm_error.as_ref().expect("structured comm error");
        assert_eq!((err.rank, err.peer, err.tag), (0, 1, 0x42));
        assert!(failure.message.contains("tag 0x42"), "{}", failure.message);
        assert!(
            failure.message.contains("from rank 1"),
            "{}",
            failure.message
        );
    }

    #[test]
    fn deadlock_dump_includes_unmatched_arrivals() {
        let out = Universe::try_run_with_timeout(2, Duration::from_millis(50), |c| {
            if c.rank() == 1 {
                c.send_f64s(0, 0x7, vec![1.0, 2.0]);
            } else {
                // Waits for a tag that never comes while tag 0x7 sits queued.
                let _ = c.recv_f64s(1, 0x8);
            }
        });
        let err = out[0]
            .as_ref()
            .expect_err("rank 0 deadlocks")
            .comm_error
            .clone()
            .expect("structured comm error");
        assert!(err.pending.contains("tag 0x7"), "{}", err.pending);
        assert!(err.pending.contains("rank 1"), "{}", err.pending);
    }

    #[test]
    fn racing_arrival_beats_the_tripwire() {
        // A message that lands "late" (after the receiver started waiting on
        // a short timeout) must still be delivered, not misreported.
        let out = Universe::run_with_timeout(2, Duration::from_millis(400), |c| {
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(100));
                c.send_f64s(1, 5, vec![3.5]);
                0.0
            } else {
                c.recv_f64s(0, 5)[0]
            }
        });
        assert_eq!(out[1], 3.5);
    }

    #[test]
    fn try_run_contains_ordinary_panics() {
        let out = Universe::try_run(3, |c| {
            if c.rank() == 1 {
                panic!("boom on rank {}", c.rank());
            }
            c.rank() * 10
        });
        assert_eq!(*out[0].as_ref().unwrap(), 0);
        assert_eq!(*out[2].as_ref().unwrap(), 20);
        let failure = out[1].as_ref().expect_err("rank 1 panicked");
        assert!(failure.message.contains("boom on rank 1"));
        assert!(failure.comm_error.is_none());
    }

    /// Test hook: kills `kill.0` at op `kill.1`, drops every message whose
    /// tag is in `drop_tags`, delays everything else by `delay`.
    struct TestHook {
        kill: Option<(usize, u64)>,
        drop_tags: Vec<u64>,
        delay: Option<Duration>,
    }

    impl FaultHook for TestHook {
        fn on_step(&self, rank: usize, op: u64) -> StepFault {
            match self.kill {
                Some((r, k)) if r == rank && op == k => StepFault::Kill,
                _ => StepFault::Continue,
            }
        }
        fn on_send(&self, _rank: usize, _op: u64, _to: usize, tag: u64, _bytes: u64) -> SendFault {
            if self.drop_tags.contains(&tag) {
                SendFault::Drop
            } else if let Some(d) = self.delay {
                SendFault::Delay(d)
            } else {
                SendFault::Deliver
            }
        }
    }

    #[test]
    fn injected_kill_surfaces_structured_and_contained() {
        let hook: Arc<dyn FaultHook> = Arc::new(TestHook {
            kill: Some((1, 0)),
            drop_tags: vec![],
            delay: None,
        });
        let out = Universe::try_run_with_faults(2, Duration::from_millis(60), Some(hook), |c| {
            if c.rank() == 1 {
                c.send_f64s(0, 5, vec![1.0]); // killed at this op
                unreachable!("rank 1 dies before delivering");
            }
            // Rank 0 waits on the victim and must observe a CommError.
            let got = c.recv_checked(1, 5);
            got.is_err()
        });
        assert_eq!(out[0].as_ref().ok(), Some(&true), "peer sees the timeout");
        let failure = out[1].as_ref().expect_err("rank 1 was killed");
        let injected = failure.injected.as_ref().expect("structured fault");
        assert_eq!((injected.rank, injected.op), (1, 0));
        assert_eq!(injected.kind, InjectedFaultKind::Kill);
        assert!(failure.message.contains("fault injection"), "{failure}");
    }

    #[test]
    fn dropped_message_counts_as_sent_but_never_arrives() {
        let hook: Arc<dyn FaultHook> = Arc::new(TestHook {
            kill: None,
            drop_tags: vec![0x66],
            delay: None,
        });
        let out = Universe::try_run_with_faults(2, Duration::from_millis(50), Some(hook), |c| {
            if c.rank() == 0 {
                c.send_f64s(1, 0x66, vec![1.0, 2.0]); // dropped
                c.send_f64s(1, 0x67, vec![3.0]); // delivered
                (c.stats().msgs_sent, 0.0)
            } else {
                let ok = c.recv_f64s(0, 0x67)[0];
                let lost = c.recv_checked(0, 0x66);
                assert!(lost.is_err(), "dropped message must never arrive");
                (c.stats().msgs_recv, ok)
            }
        });
        let (sent, _) = *out[0].as_ref().unwrap();
        let (recv, ok) = *out[1].as_ref().unwrap();
        assert_eq!(sent, 2, "drop still counts as sent");
        assert_eq!(recv, 1, "only the delivered message is received");
        assert_eq!(ok, 3.0);
    }

    #[test]
    fn delays_do_not_change_results() {
        let run = |delay: Option<Duration>| {
            let hook: Arc<dyn FaultHook> = Arc::new(TestHook {
                kill: None,
                drop_tags: vec![],
                delay,
            });
            Universe::try_run_with_faults(4, Duration::from_secs(5), Some(hook), |c| {
                c.allreduce_sum((c.rank() as f64 + 1.0) * 0.1, 9)
            })
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<f64>>()
        };
        let plain = run(None);
        let delayed = run(Some(Duration::from_millis(2)));
        assert_eq!(plain, delayed, "delays shift time, not values");
    }

    #[test]
    fn send_ops_counts_per_rank_sends() {
        let out = Universe::run(2, |c| {
            let peer = 1 - c.rank();
            c.send_f64s(peer, 1, vec![0.0]);
            let _ = c.recv(peer, 1);
            c.send_f64s(peer, 2, vec![0.0]);
            let _ = c.recv(peer, 2);
            c.send_ops()
        });
        assert_eq!(out, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "tag 0x9")]
    fn run_still_panics_on_deadlock() {
        let _ = Universe::run_with_timeout(2, Duration::from_millis(50), |c| {
            if c.rank() == 0 {
                let _ = c.recv_f64s(1, 0x9);
            }
        });
    }
}
