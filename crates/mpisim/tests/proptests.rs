//! Property-based tests for the SPMD runtime: collectives must agree with
//! their sequential definitions for any rank count and payload.

use parapre_mpisim::Universe;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_sum_matches_reference(
        vals in proptest::collection::vec(-100.0f64..100.0, 1..9),
    ) {
        let p = vals.len();
        let expect: f64 = vals.iter().sum();
        let vals_ref = &vals;
        let out = Universe::run(p, move |c| c.allreduce_sum(vals_ref[c.rank()], 1));
        for v in out {
            // Tree summation reassociates; tolerance is tight anyway.
            prop_assert!((v - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn allreduce_vec_elementwise_sum(
        p in 1usize..7,
        len in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mk = move |rank: usize, i: usize| {
            let h = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((rank * 1000 + i) as u64);
            ((h >> 20) as f64 / (1u64 << 40) as f64) - 4.0
        };
        let out = Universe::run(p, move |c| {
            let mut x: Vec<f64> = (0..len).map(|i| mk(c.rank(), i)).collect();
            c.allreduce_sum_vec(&mut x, 2);
            x
        });
        for i in 0..len {
            let expect: f64 = (0..p).map(|r| mk(r, i)).sum();
            for rank_out in &out {
                prop_assert!((rank_out[i] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gather_preserves_rank_order(p in 1usize..8, root in 0usize..8) {
        let root = root % p;
        let out = Universe::run(p, move |c| {
            c.gather_vec(root, &[c.rank() as f64 * 2.0], 3)
        });
        for (r, o) in out.iter().enumerate() {
            if r == root {
                let flat = o.as_ref().unwrap();
                let expect: Vec<f64> = (0..p).map(|q| q as f64 * 2.0).collect();
                prop_assert_eq!(flat, &expect);
            } else {
                prop_assert!(o.is_none());
            }
        }
    }

    #[test]
    fn bcast_delivers_root_payload(p in 1usize..9, len in 1usize..16, seed in any::<u32>()) {
        let payload: Vec<f64> = (0..len).map(|i| (seed as f64 + i as f64).sin()).collect();
        let payload_ref = &payload;
        let out = Universe::run(p, move |c| {
            let mut x = if c.rank() == 0 { payload_ref.clone() } else { vec![0.0; len] };
            c.bcast_vec_from_zero(&mut x, 4);
            x
        });
        for o in out {
            prop_assert_eq!(&o, payload_ref);
        }
    }

    #[test]
    fn ring_pass_accumulates(p in 2usize..8) {
        // Each rank adds its id and forwards; final value = sum 0..p-1.
        let out = Universe::run(p, move |c| {
            let me = c.rank();
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            if me == 0 {
                c.send_f64s(next, 9, vec![0.0]);
                let v = c.recv_f64s(prev, 9);
                v[0] + me as f64
            } else {
                let v = c.recv_f64s(prev, 9);
                let acc = v[0] + me as f64;
                c.send_f64s(next, 9, vec![acc]);
                acc
            }
        });
        let total = (p * (p - 1)) as f64 / 2.0;
        prop_assert_eq!(out[0], total);
    }
}
