//! Property-based tests for the FEM assembly layer.

use parapre_fem::{bc, convection, elasticity, heat, poisson, LinearSystem};
use parapre_grid::structured::{unit_cube, unit_square};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stiffness_2d_spd_properties(nx in 3usize..12) {
        let mesh = unit_square(nx, nx);
        let (a, _) = poisson::assemble_2d(&mesh, |_, _| 0.0);
        prop_assert!(a.is_symmetric(1e-12));
        // Positive semidefinite: x^T A x >= 0 for probe vectors.
        for k in 0..4 {
            let x: Vec<f64> = (0..a.n_rows())
                .map(|i| ((i * (k + 3)) as f64 * 0.61).sin())
                .collect();
            let ax = a.mul_vec(&x);
            let xtax: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
            prop_assert!(xtax >= -1e-10, "x^T A x = {xtax}");
        }
    }

    #[test]
    fn mass_matrix_row_sums_are_lumped_masses(n in 2usize..6) {
        let mesh = unit_cube(n + 1, n + 1, n + 1);
        let (m, _) = heat::assemble_mass_stiffness(&mesh);
        // Row sums are the lumped nodal volumes: positive, summing to |Ω|.
        let ones = vec![1.0; m.n_rows()];
        let sums = m.mul_vec(&ones);
        prop_assert!(sums.iter().all(|&s| s > 0.0));
        let total: f64 = sums.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn dirichlet_rows_exactly_identity(nx in 3usize..10, g in -3.0f64..3.0) {
        let mesh = unit_square(nx, nx);
        let (a, b) = poisson::assemble_2d(&mesh, |_, _| 1.0);
        let mut sys = LinearSystem { a, b };
        let fixed: Vec<(usize, f64)> = mesh
            .boundary_nodes()
            .iter()
            .enumerate()
            .filter(|&(_, &on)| on)
            .map(|(i, _)| (i, g))
            .collect();
        bc::apply_dirichlet(&mut sys, &fixed);
        for &(i, v) in &fixed {
            let (cols, vals) = sys.a.row(i);
            for (&j, &av) in cols.iter().zip(vals) {
                prop_assert_eq!(av, if j == i { 1.0 } else { 0.0 });
            }
            prop_assert_eq!(sys.b[i], v);
        }
        // Symmetry preserved by the column sweep.
        prop_assert!(sys.a.is_symmetric(1e-12));
    }

    #[test]
    fn convection_reduces_to_stiffness_without_flow(
        nx in 4usize..10,
        vmag in 1.0f64..2000.0,
        theta in 0.0f64..1.57,
    ) {
        let mesh = unit_square(nx, nx);
        // v = 0 ⇒ the SUPG operator degenerates to the pure stiffness matrix.
        let (a0, _) = convection::assemble_2d(&mesh, 0.0, 0.0);
        let (k, _) = poisson::assemble_2d(&mesh, |_, _| 0.0);
        for (i, j, v) in a0.iter() {
            prop_assert!((k.get(i, j) - v).abs() < 1e-12);
        }
        // v ≠ 0 ⇒ genuinely unsymmetric, structurally symmetric pattern.
        let (a, _) = convection::assemble_2d(&mesh, vmag * theta.cos(), vmag * theta.sin());
        prop_assert!(!a.is_symmetric(1e-9));
        for (i, j, _) in a.iter() {
            prop_assert!(
                a.row(j).0.binary_search(&i).is_ok(),
                "pattern must stay structurally symmetric"
            );
        }
    }

    #[test]
    fn elasticity_energy_nonnegative(nr in 3usize..8, mu in 0.1f64..5.0, lam in 0.0f64..5.0) {
        let mesh = parapre_grid::ring::quarter_ring(nr, nr);
        let (a, _) = elasticity::assemble_2d(&mesh, mu, lam, |_, _| [0.0, 0.0]);
        prop_assert!(a.is_symmetric(1e-10));
        for k in 0..3 {
            let x: Vec<f64> = (0..a.n_rows())
                .map(|i| ((i + k) as f64 * 0.23).cos())
                .collect();
            let ax = a.mul_vec(&x);
            let e: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
            prop_assert!(e >= -1e-9, "energy {e}");
        }
    }

    #[test]
    fn submesh_owned_rows_complete(nx in 5usize..12, p in 2usize..5, seed in any::<u64>()) {
        let mesh = unit_square(nx, nx);
        let part = parapre_partition::partition_graph(&mesh.adjacency(), p, seed);
        let mut owned_total = 0;
        for r in 0..p as u32 {
            let sub = parapre_fem::submesh::extract_2d(&mesh, &part.owner, r);
            owned_total += sub.owned.iter().filter(|&&o| o).count();
            // Each kept element touches an owned node.
            for tri in &sub.mesh.triangles {
                prop_assert!(tri.iter().any(|&v| sub.owned[v]));
            }
        }
        prop_assert_eq!(owned_total, mesh.n_nodes());
    }
}
