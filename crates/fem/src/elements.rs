//! Exact P1 element integrals on triangles and tetrahedra.

/// Geometry of a P1 triangle: area and constant basis gradients.
#[derive(Debug, Clone, Copy)]
pub struct TriGeom {
    /// Element area.
    pub area: f64,
    /// `grad[i] = ∇λᵢ` (constant over the element).
    pub grad: [[f64; 2]; 3],
    /// Element centroid.
    pub centroid: [f64; 2],
    /// Longest edge length (mesh-size measure for stabilization).
    pub h: f64,
}

impl TriGeom {
    /// Computes the geometry from vertex coordinates (CCW order).
    pub fn new(p: [[f64; 2]; 3]) -> Self {
        let [a, b, c] = p;
        let det = (b[0] - a[0]) * (c[1] - a[1]) - (c[0] - a[0]) * (b[1] - a[1]);
        let area = 0.5 * det;
        debug_assert!(area > 0.0, "triangle not CCW or degenerate");
        let inv = 1.0 / det;
        // ∇λ_0 = (y_b − y_c, x_c − x_b)/det, cyclic.
        let grad = [
            [(b[1] - c[1]) * inv, (c[0] - b[0]) * inv],
            [(c[1] - a[1]) * inv, (a[0] - c[0]) * inv],
            [(a[1] - b[1]) * inv, (b[0] - a[0]) * inv],
        ];
        let centroid = [(a[0] + b[0] + c[0]) / 3.0, (a[1] + b[1] + c[1]) / 3.0];
        let e = |u: [f64; 2], v: [f64; 2]| ((u[0] - v[0]).powi(2) + (u[1] - v[1]).powi(2)).sqrt();
        let h = e(a, b).max(e(b, c)).max(e(c, a));
        TriGeom {
            area,
            grad,
            centroid,
            h,
        }
    }

    /// Stiffness element matrix `∫ ∇φⱼ·∇φᵢ`.
    pub fn stiffness(&self) -> [[f64; 3]; 3] {
        let mut k = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                k[i][j] = self.area
                    * (self.grad[i][0] * self.grad[j][0] + self.grad[i][1] * self.grad[j][1]);
            }
        }
        k
    }

    /// Mass element matrix `∫ φⱼ φᵢ = (area/12)(1 + δᵢⱼ)`.
    pub fn mass(&self) -> [[f64; 3]; 3] {
        let m = self.area / 12.0;
        let mut out = [[m; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            row[i] = 2.0 * m;
        }
        out
    }

    /// Load vector for `∫ f φᵢ` with one-point (centroid) quadrature.
    pub fn load(&self, f_centroid: f64) -> [f64; 3] {
        [f_centroid * self.area / 3.0; 3]
    }
}

/// Geometry of a P1 tetrahedron.
#[derive(Debug, Clone, Copy)]
pub struct TetGeom {
    /// Element volume.
    pub volume: f64,
    /// `grad[i] = ∇λᵢ`.
    pub grad: [[f64; 3]; 4],
    /// Element centroid.
    pub centroid: [f64; 3],
}

impl TetGeom {
    /// Computes the geometry from vertex coordinates (positive orientation).
    pub fn new(p: [[f64; 3]; 4]) -> Self {
        let [a, b, c, d] = p;
        let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
        let w = [d[0] - a[0], d[1] - a[1], d[2] - a[2]];
        let det = u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
            + u[2] * (v[0] * w[1] - v[1] * w[0]);
        let volume = det / 6.0;
        debug_assert!(volume > 0.0, "tet inverted or degenerate");
        // Gradients from the inverse Jacobian: rows of J^{-T} give the
        // gradients of λ₁..λ₃; λ₀ = 1 − λ₁ − λ₂ − λ₃.
        let inv = 1.0 / det;
        let cross = |x: [f64; 3], y: [f64; 3]| {
            [
                x[1] * y[2] - x[2] * y[1],
                x[2] * y[0] - x[0] * y[2],
                x[0] * y[1] - x[1] * y[0],
            ]
        };
        let g1 = cross(v, w);
        let g2 = cross(w, u);
        let g3 = cross(u, v);
        let grad1 = [g1[0] * inv, g1[1] * inv, g1[2] * inv];
        let grad2 = [g2[0] * inv, g2[1] * inv, g2[2] * inv];
        let grad3 = [g3[0] * inv, g3[1] * inv, g3[2] * inv];
        let grad0 = [
            -grad1[0] - grad2[0] - grad3[0],
            -grad1[1] - grad2[1] - grad3[1],
            -grad1[2] - grad2[2] - grad3[2],
        ];
        let centroid = [
            (a[0] + b[0] + c[0] + d[0]) / 4.0,
            (a[1] + b[1] + c[1] + d[1]) / 4.0,
            (a[2] + b[2] + c[2] + d[2]) / 4.0,
        ];
        TetGeom {
            volume,
            grad: [grad0, grad1, grad2, grad3],
            centroid,
        }
    }

    /// Stiffness element matrix `∫ ∇φⱼ·∇φᵢ`.
    pub fn stiffness(&self) -> [[f64; 4]; 4] {
        let mut k = [[0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                k[i][j] = self.volume
                    * (self.grad[i][0] * self.grad[j][0]
                        + self.grad[i][1] * self.grad[j][1]
                        + self.grad[i][2] * self.grad[j][2]);
            }
        }
        k
    }

    /// Mass element matrix `∫ φⱼ φᵢ = (V/20)(1 + δᵢⱼ)`.
    pub fn mass(&self) -> [[f64; 4]; 4] {
        let m = self.volume / 20.0;
        let mut out = [[m; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            row[i] = 2.0 * m;
        }
        out
    }

    /// Load vector with centroid quadrature.
    pub fn load(&self, f_centroid: f64) -> [f64; 4] {
        [f_centroid * self.volume / 4.0; 4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_triangle() {
        let g = TriGeom::new([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]);
        assert!((g.area - 0.5).abs() < 1e-15);
        // Gradients: λ0 = 1-x-y, λ1 = x, λ2 = y.
        assert_eq!(g.grad[0], [-1.0, -1.0]);
        assert_eq!(g.grad[1], [1.0, 0.0]);
        assert_eq!(g.grad[2], [0.0, 1.0]);
    }

    #[test]
    fn triangle_basis_gradients_sum_to_zero() {
        let g = TriGeom::new([[0.2, 0.1], [1.3, 0.4], [0.5, 1.7]]);
        for d in 0..2 {
            let s: f64 = (0..3).map(|i| g.grad[i][d]).sum();
            assert!(s.abs() < 1e-14);
        }
    }

    #[test]
    fn triangle_stiffness_rows_sum_to_zero() {
        // K 1 = 0 because constants are in the kernel of the gradient.
        let g = TriGeom::new([[0.0, 0.0], [2.0, 0.3], [0.4, 1.5]]);
        let k = g.stiffness();
        for row in &k {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-13);
        }
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert!((k[i][j] - k[j][i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn triangle_mass_integrates_one() {
        let g = TriGeom::new([[0.0, 0.0], [3.0, 0.0], [0.0, 2.0]]);
        let m = g.mass();
        let total: f64 = m.iter().flatten().sum();
        assert!((total - g.area).abs() < 1e-13);
    }

    #[test]
    fn reference_tet() {
        let g = TetGeom::new([
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]);
        assert!((g.volume - 1.0 / 6.0).abs() < 1e-15);
        assert_eq!(g.grad[1], [1.0, 0.0, 0.0]);
        assert_eq!(g.grad[2], [0.0, 1.0, 0.0]);
        assert_eq!(g.grad[3], [0.0, 0.0, 1.0]);
        assert_eq!(g.grad[0], [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn tet_stiffness_rows_sum_to_zero() {
        let g = TetGeom::new([
            [0.1, 0.0, 0.2],
            [1.2, 0.1, 0.0],
            [0.3, 1.4, 0.1],
            [0.2, 0.3, 1.1],
        ]);
        let k = g.stiffness();
        for row in &k {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn tet_mass_integrates_one() {
        let g = TetGeom::new([
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]);
        let m = g.mass();
        let total: f64 = m.iter().flatten().sum();
        assert!((total - g.volume).abs() < 1e-15);
    }
}
