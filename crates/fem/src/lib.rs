//! # parapre-fem
//!
//! P1 (linear) finite-element discretization of the paper's PDE suite
//! (Cai & Sosonkina, IPPS 2003, §3):
//!
//! * [`poisson`] — `−∇²u = f` on triangles (2-D) and tetrahedra (3-D),
//!   Test Cases 1–3;
//! * [`heat`] — one implicit-Euler step of `u_t = ∇²u`, producing
//!   `A = M + Δt·K` (paper eq. 13), Test Case 4;
//! * [`convection`] — the convection–diffusion equation `v·∇u = ∇²u` with
//!   streamline-upwind Petrov–Galerkin weighting (the paper's "upwind
//!   weighting functions"), Test Case 5;
//! * [`elasticity`] — the plane linear-elasticity operator
//!   `−µ∇²u − (µ+λ)∇(∇·u)` with two displacement dofs per node,
//!   Test Case 6;
//! * [`bc`] — Dirichlet row elimination (homogeneous Neumann conditions are
//!   natural for P1 and need no action);
//! * [`submesh`] — per-subdomain mesh extraction for the paper's
//!   *distributed discretization* (§1.1): every rank keeps the elements
//!   touching its owned nodes so all owned matrix rows assemble without
//!   communication ("minimum overlap").
//!
//! Element integrals use exact formulas for P1 simplices (one-point
//! quadrature for load terms), assembled into [`parapre_sparse::Coo`] and
//! finalized as CSR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index loops mirror the papers' pseudocode in the numeric kernels.
#![allow(clippy::needless_range_loop)]

pub mod bc;
pub mod convection;
pub mod elasticity;
pub mod elements;
pub mod heat;
pub mod norms;
pub mod poisson;
pub mod submesh;
pub mod varcoeff;

use parapre_sparse::Csr;

/// An assembled linear system `A x = b`.
#[derive(Debug, Clone)]
pub struct LinearSystem {
    /// System matrix.
    pub a: Csr,
    /// Right-hand side.
    pub b: Vec<f64>,
}

impl LinearSystem {
    /// Residual norm `‖b − A x‖₂` of a candidate solution.
    pub fn residual_norm(&self, x: &[f64]) -> f64 {
        let mut ax = vec![0.0; self.b.len()];
        self.a.spmv(x, &mut ax);
        self.b
            .iter()
            .zip(&ax)
            .map(|(bi, ai)| (bi - ai) * (bi - ai))
            .sum::<f64>()
            .sqrt()
    }
}
