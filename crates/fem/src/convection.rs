//! Convection–diffusion `v·∇u = ∇²u` with streamline upwinding
//! (paper Test Case 5, Fig. 4).
//!
//! The paper makes the flow convection-dominated (`|v| = 1000`, direction
//! `θ = π/4`) and notes that "we have to use one type of upwind weighting
//! functions, resulting in an unsymmetric system matrix". We implement the
//! standard streamline-upwind Petrov–Galerkin (SUPG) weighting for P1
//! triangles: test functions `w = φ + τ v·∇φ` with the optimal
//! `τ = (h/2|v|)(coth Pe − 1/Pe)`, `Pe = |v|h/2` (unit diffusivity).
//!
//! Boundary conditions (paper Fig. 4): `u = 0` on the bottom (`y = 0`) and
//! on the lower part of the left side (`x = 0, y ≤ 1/4`); `u = 1` on the
//! upper part of the left side; homogeneous Neumann on the right and top.

use crate::elements::TriGeom;
use parapre_grid::Mesh2d;
use parapre_sparse::{Coo, Csr};

/// The paper's convection magnitude.
pub const V_MAG: f64 = 1000.0;
/// The paper's convection angle θ = π/4.
pub const THETA: f64 = std::f64::consts::FRAC_PI_4;

/// Optimal SUPG parameter for element size `h` and speed `vnorm`
/// (unit diffusivity).
fn tau_supg(h: f64, vnorm: f64) -> f64 {
    if vnorm <= 0.0 {
        return 0.0;
    }
    let pe = 0.5 * vnorm * h;
    let xi = if pe > 20.0 {
        1.0 - 1.0 / pe // coth(pe) → 1 for large Pe
    } else if pe < 1e-8 {
        pe / 3.0
    } else {
        1.0 / pe.tanh() - 1.0 / pe
    };
    0.5 * h / vnorm * xi
}

/// Assembles the SUPG-stabilized operator
/// `∫ ∇u·∇w + (v·∇u) w` with `w = φ + τ v·∇φ` (zero load).
pub fn assemble_2d(mesh: &Mesh2d, vx: f64, vy: f64) -> (Csr, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut coo = Coo::with_capacity(n, n, 9 * mesh.n_elems());
    let b = vec![0.0; n];
    let vnorm = vx.hypot(vy);
    for tri in &mesh.triangles {
        let g = TriGeom::new([
            mesh.coords[tri[0]],
            mesh.coords[tri[1]],
            mesh.coords[tri[2]],
        ]);
        let tau = tau_supg(g.h, vnorm);
        // v·∇φ_i is constant per element.
        let vg: [f64; 3] = std::array::from_fn(|i| vx * g.grad[i][0] + vy * g.grad[i][1]);
        for i in 0..3 {
            for j in 0..3 {
                // Diffusion (Galerkin; SUPG diffusion term vanishes for P1).
                let diff = g.area * (g.grad[i][0] * g.grad[j][0] + g.grad[i][1] * g.grad[j][1]);
                // Convection, Galerkin part: ∫ (v·∇φ_j) φ_i = (v·∇φ_j)·area/3.
                let conv = vg[j] * g.area / 3.0;
                // SUPG stabilization: τ ∫ (v·∇φ_j)(v·∇φ_i).
                let supg = tau * vg[j] * vg[i] * g.area;
                coo.push(tri[i], tri[j], diff + conv + supg);
            }
        }
    }
    (coo.to_csr(), b)
}

/// The paper's inlet profile on `x = 0`: `u = 0` for `y ≤ 1/4`, else `u = 1`.
pub fn inlet_value(y: f64) -> f64 {
    if y <= 0.25 {
        0.0
    } else {
        1.0
    }
}

/// Collects the Test Case 5 Dirichlet set on a unit-square mesh.
pub fn dirichlet_tc5(coords: &[[f64; 2]]) -> Vec<(usize, f64)> {
    let eps = 1e-12;
    coords
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| {
            if p[1].abs() < eps {
                Some((i, 0.0)) // bottom
            } else if p[0].abs() < eps {
                Some((i, inlet_value(p[1]))) // left inlet
            } else {
                None // right/top: natural (Neumann)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc;
    use parapre_grid::structured::unit_square;
    use parapre_krylov::{Gmres, GmresConfig, Ilut, IlutConfig};

    #[test]
    fn matrix_is_unsymmetric() {
        let mesh = unit_square(8, 8);
        let (a, _) = assemble_2d(&mesh, V_MAG * THETA.cos(), V_MAG * THETA.sin());
        assert!(!a.is_symmetric(1e-9));
    }

    #[test]
    fn tau_limits() {
        // Diffusion-dominated limit: τ → h²/12 (Pe → 0).
        let t0 = tau_supg(0.1, 1e-9);
        assert!((t0 - 0.1f64.powi(2) / 12.0).abs() < 1e-6, "{t0}");
        // Convection-dominated: τ ≈ h/(2|v|).
        let t = tau_supg(0.1, 1000.0);
        assert!((t - 0.05 / 1000.0).abs() / t < 0.05);
        assert_eq!(tau_supg(0.1, 0.0), 0.0);
    }

    #[test]
    fn solution_bounded_and_front_transported() {
        // Solve TC5 on a coarse grid; the discontinuity enters at
        // (0, 0.25) and is carried along θ = π/4. Check the solution stays
        // in [0,1] up to small over/undershoot and that the upper-left is
        // ≈1 while lower-right is ≈0.
        let nx = 21;
        let mesh = unit_square(nx, nx);
        let (a, b) = assemble_2d(&mesh, V_MAG * THETA.cos(), V_MAG * THETA.sin());
        let mut sys = crate::LinearSystem { a, b };
        bc::apply_dirichlet(&mut sys, &dirichlet_tc5(&mesh.coords));
        let n = sys.b.len();
        let mut x = vec![0.0; n];
        let f = Ilut::factor(
            &sys.a,
            &IlutConfig {
                drop_tol: 1e-4,
                fill: 30,
            },
        )
        .unwrap();
        let rep = Gmres::new(GmresConfig {
            max_iters: 800,
            ..Default::default()
        })
        .solve(&sys.a, &f, &sys.b, &mut x);
        assert!(rep.converged, "relres {}", rep.final_relres);
        let at = |ix: usize, iy: usize| x[iy * nx + ix];
        // Upper-left region (above the front): carried inlet value 1.
        assert!(at(2, nx - 2) > 0.8, "upper left {}", at(2, nx - 2));
        // Lower-right region (below the front): value 0.
        assert!(at(nx - 2, 2).abs() < 0.2, "lower right {}", at(nx - 2, 2));
        // SUPG keeps over/undershoot moderate.
        let (lo, hi) = x
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        assert!(lo > -0.3 && hi < 1.3, "range [{lo}, {hi}]");
    }

    #[test]
    fn dirichlet_set_matches_paper_figure() {
        let mesh = unit_square(5, 5);
        let set = dirichlet_tc5(&mesh.coords);
        // Bottom row: 5 nodes at 0; left column above y=0: 4 nodes.
        assert_eq!(set.len(), 5 + 4);
        // u = 1 nodes exist (left side above 1/4).
        assert!(set.iter().any(|&(_, v)| v == 1.0));
        // Corner (0,0) is 0 (bottom wins; same value anyway).
        assert!(set.iter().any(|&(i, v)| i == 0 && v == 0.0));
    }
}
