//! Variable-coefficient diffusion `−∇·(k(x)∇u) = f`.
//!
//! The paper's Poisson cases use constant diffusivity; heterogeneous
//! coefficients (layered media, jumps) are the canonical stress test for
//! algebraic preconditioners — ILU quality degrades across strong jumps —
//! and a library release would be incomplete without them. Coefficients are
//! sampled at element centroids (piecewise-constant `k`), which preserves
//! the P1 convergence order for smooth `k` and represents jumps aligned
//! with element boundaries exactly.

use crate::elements::{TetGeom, TriGeom};
use parapre_grid::{Mesh2d, Mesh3d};
use parapre_sparse::{Coo, Csr};

/// Assembles `∫ k ∇u·∇v = ∫ f v` on a triangular mesh.
pub fn assemble_2d(
    mesh: &Mesh2d,
    k: impl Fn(f64, f64) -> f64,
    f: impl Fn(f64, f64) -> f64,
) -> (Csr, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut coo = Coo::with_capacity(n, n, 9 * mesh.n_elems());
    let mut b = vec![0.0; n];
    for tri in &mesh.triangles {
        let g = TriGeom::new([
            mesh.coords[tri[0]],
            mesh.coords[tri[1]],
            mesh.coords[tri[2]],
        ]);
        let ke = g.stiffness();
        let kc = k(g.centroid[0], g.centroid[1]);
        assert!(kc > 0.0, "diffusivity must be positive");
        let fe = g.load(f(g.centroid[0], g.centroid[1]));
        for i in 0..3 {
            for j in 0..3 {
                coo.push(tri[i], tri[j], kc * ke[i][j]);
            }
            b[tri[i]] += fe[i];
        }
    }
    (coo.to_csr(), b)
}

/// Assembles `∫ k ∇u·∇v = ∫ f v` on a tetrahedral mesh.
pub fn assemble_3d(
    mesh: &Mesh3d,
    k: impl Fn(f64, f64, f64) -> f64,
    f: impl Fn(f64, f64, f64) -> f64,
) -> (Csr, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut coo = Coo::with_capacity(n, n, 16 * mesh.n_elems());
    let mut b = vec![0.0; n];
    for tet in &mesh.tets {
        let g = TetGeom::new([
            mesh.coords[tet[0]],
            mesh.coords[tet[1]],
            mesh.coords[tet[2]],
            mesh.coords[tet[3]],
        ]);
        let ke = g.stiffness();
        let kc = k(g.centroid[0], g.centroid[1], g.centroid[2]);
        assert!(kc > 0.0, "diffusivity must be positive");
        let fe = g.load(f(g.centroid[0], g.centroid[1], g.centroid[2]));
        for i in 0..4 {
            for j in 0..4 {
                coo.push(tet[i], tet[j], kc * ke[i][j]);
            }
            b[tet[i]] += fe[i];
        }
    }
    (coo.to_csr(), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc;
    use parapre_grid::structured::unit_square;
    use parapre_krylov::{CgConfig, ConjugateGradient, IdentityPrecond};

    #[test]
    fn constant_coefficient_matches_plain_poisson() {
        let mesh = unit_square(8, 8);
        let (a1, b1) = assemble_2d(&mesh, |_, _| 1.0, |x, y| x + y);
        let (a2, b2) = crate::poisson::assemble_2d(&mesh, |x, y| x + y);
        assert_eq!(a1, a2);
        for (u, v) in b1.iter().zip(&b2) {
            assert!((u - v).abs() < 1e-15);
        }
    }

    #[test]
    fn layered_medium_flux_continuity() {
        // 1-D-like problem on the square: k = 1 for x < 1/2, k = 10 after.
        // With u(0)=0, u(1)=1 and no source, the exact solution is piecewise
        // linear with slope ratio 10:1 (flux continuity).
        let nx = 33;
        let mesh = unit_square(nx, nx);
        let (a, b) = assemble_2d(&mesh, |x, _| if x < 0.5 { 1.0 } else { 10.0 }, |_, _| 0.0);
        let mut sys = crate::LinearSystem { a, b };
        // Dirichlet on left/right; homogeneous Neumann top/bottom.
        let fixed = bc::dirichlet_where(
            &mesh.coords,
            |p| p[0] < 1e-12 || p[0] > 1.0 - 1e-12,
            |p| if p[0] < 0.5 { 0.0 } else { 1.0 },
        );
        bc::apply_dirichlet(&mut sys, &fixed);
        let n = sys.b.len();
        let mut u = vec![0.0; n];
        let rep = ConjugateGradient::new(CgConfig {
            max_iters: 5000,
            rel_tol: 1e-10,
            ..Default::default()
        })
        .solve(&sys.a, &IdentityPrecond::new(n), &sys.b, &mut u);
        assert!(rep.converged);
        // Exact: u = (20/11) x for x<1/2; u = (2/11)(x-1/2) + 10/11 after.
        let mid_row = (nx / 2) * nx;
        for i in 0..nx {
            let x = mesh.coords[mid_row + i][0];
            let exact = if x <= 0.5 {
                20.0 / 11.0 * x
            } else {
                2.0 / 11.0 * (x - 0.5) + 10.0 / 11.0
            };
            assert!(
                (u[mid_row + i] - exact).abs() < 5e-3,
                "x = {x}: {} vs {exact}",
                u[mid_row + i]
            );
        }
    }

    #[test]
    fn jump_coefficient_worsens_conditioning_signal() {
        // Gershgorin width grows with the contrast — a cheap verification
        // that the coefficient actually enters the operator.
        let mesh = unit_square(8, 8);
        let (a1, _) = assemble_2d(&mesh, |_, _| 1.0, |_, _| 0.0);
        let (ak, _) = assemble_2d(&mesh, |x, _| if x < 0.5 { 1.0 } else { 1000.0 }, |_, _| 0.0);
        let (_, hi1) = parapre_sparse::scaling::gershgorin_bounds(&a1);
        let (_, hik) = parapre_sparse::scaling::gershgorin_bounds(&ak);
        assert!(hik > 100.0 * hi1);
    }
}
