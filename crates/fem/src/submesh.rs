//! Subdomain mesh extraction for **distributed discretization**.
//!
//! The paper (§1.1) never assembles the global matrix: each processor keeps
//! its subdomain (plus replicated *external interface* points) and
//! discretizes locally, producing exactly its designated rows of `A`.
//! [`extract_2d`]/[`extract_3d`] implement the element selection that makes
//! this possible with zero assembly communication: a rank keeps **every
//! element touching one of its owned nodes**, so the support of every owned
//! basis function is entirely local (the paper's "minimum overlap").

use parapre_grid::{Mesh2d, Mesh3d};

/// A 2-D subdomain mesh with its mapping back to the global mesh.
#[derive(Debug, Clone)]
pub struct SubMesh2d {
    /// The local mesh (owned + ghost nodes, local element copies).
    pub mesh: Mesh2d,
    /// Global node id of each local node.
    pub local_to_global: Vec<usize>,
    /// True for nodes owned by this rank (false = external interface).
    pub owned: Vec<bool>,
}

/// A 3-D subdomain mesh with its mapping back to the global mesh.
#[derive(Debug, Clone)]
pub struct SubMesh3d {
    /// The local mesh (owned + ghost nodes, local element copies).
    pub mesh: Mesh3d,
    /// Global node id of each local node.
    pub local_to_global: Vec<usize>,
    /// True for nodes owned by this rank.
    pub owned: Vec<bool>,
}

/// Extracts rank `rank`'s subdomain from a partitioned 2-D mesh.
pub fn extract_2d(mesh: &Mesh2d, owner: &[u32], rank: u32) -> SubMesh2d {
    assert_eq!(owner.len(), mesh.n_nodes());
    let keep: Vec<&[usize; 3]> = mesh
        .triangles
        .iter()
        .filter(|t| t.iter().any(|&v| owner[v] == rank))
        .collect();
    let mut g2l = vec![usize::MAX; mesh.n_nodes()];
    let mut local_to_global = Vec::new();
    let mut local = |g2l: &mut Vec<usize>, v: usize| -> usize {
        if g2l[v] == usize::MAX {
            g2l[v] = local_to_global.len();
            local_to_global.push(v);
        }
        g2l[v]
    };
    let mut triangles = Vec::with_capacity(keep.len());
    for t in keep {
        triangles.push([
            local(&mut g2l, t[0]),
            local(&mut g2l, t[1]),
            local(&mut g2l, t[2]),
        ]);
    }
    let coords = local_to_global.iter().map(|&g| mesh.coords[g]).collect();
    let owned = local_to_global.iter().map(|&g| owner[g] == rank).collect();
    SubMesh2d {
        mesh: Mesh2d { coords, triangles },
        local_to_global,
        owned,
    }
}

/// Extracts rank `rank`'s subdomain from a partitioned 3-D mesh.
pub fn extract_3d(mesh: &Mesh3d, owner: &[u32], rank: u32) -> SubMesh3d {
    assert_eq!(owner.len(), mesh.n_nodes());
    let keep: Vec<&[usize; 4]> = mesh
        .tets
        .iter()
        .filter(|t| t.iter().any(|&v| owner[v] == rank))
        .collect();
    let mut g2l = vec![usize::MAX; mesh.n_nodes()];
    let mut local_to_global = Vec::new();
    let mut local = |g2l: &mut Vec<usize>, v: usize| -> usize {
        if g2l[v] == usize::MAX {
            g2l[v] = local_to_global.len();
            local_to_global.push(v);
        }
        g2l[v]
    };
    let mut tets = Vec::with_capacity(keep.len());
    for t in keep {
        tets.push([
            local(&mut g2l, t[0]),
            local(&mut g2l, t[1]),
            local(&mut g2l, t[2]),
            local(&mut g2l, t[3]),
        ]);
    }
    let coords = local_to_global.iter().map(|&g| mesh.coords[g]).collect();
    let owned = local_to_global.iter().map(|&g| owner[g] == rank).collect();
    SubMesh3d {
        mesh: Mesh3d { coords, tets },
        local_to_global,
        owned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson;
    use parapre_grid::structured::{unit_cube, unit_square};
    use parapre_partition::partition_graph;

    #[test]
    fn submeshes_cover_all_elements_without_duplication_of_ownership() {
        let mesh = unit_square(10, 10);
        let part = partition_graph(&mesh.adjacency(), 4, 1);
        let mut owned_total = 0;
        for r in 0..4 {
            let sub = extract_2d(&mesh, &part.owner, r);
            sub.mesh.check();
            owned_total += sub.owned.iter().filter(|&&o| o).count();
            // Every owned node's neighbourhood is complete: each global
            // element touching an owned node appears locally.
            assert!(sub.owned.iter().any(|&o| o));
        }
        assert_eq!(owned_total, mesh.n_nodes());
    }

    #[test]
    fn local_assembly_reproduces_global_rows_2d() {
        // The heart of distributed discretization: rows assembled from the
        // subdomain mesh must equal the global rows for owned nodes.
        let mesh = unit_square(8, 8);
        let part = partition_graph(&mesh.adjacency(), 3, 5);
        let (a_glob, b_glob) = poisson::assemble_2d(&mesh, poisson::rhs_tc1);
        for r in 0..3 {
            let sub = extract_2d(&mesh, &part.owner, r);
            let (a_loc, b_loc) = poisson::assemble_2d(&sub.mesh, poisson::rhs_tc1);
            for (li, &gi) in sub.local_to_global.iter().enumerate() {
                if !sub.owned[li] {
                    continue;
                }
                // Compare row li of a_loc with row gi of a_glob.
                let (lc, lv) = a_loc.row(li);
                let (gc, gv) = a_glob.row(gi);
                assert_eq!(lc.len(), gc.len(), "row nnz mismatch node {gi}");
                // Map local cols to global and compare as sets.
                let mut lmap: Vec<(usize, f64)> = lc
                    .iter()
                    .zip(lv)
                    .map(|(&c, &v)| (sub.local_to_global[c], v))
                    .collect();
                lmap.sort_by_key(|&(c, _)| c);
                for ((cg, vg), &(cl, vl)) in gc.iter().zip(gv).zip(&lmap) {
                    assert_eq!(*cg, cl);
                    assert!((vg - vl).abs() < 1e-13);
                }
                assert!((b_loc[li] - b_glob[gi]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn local_assembly_reproduces_global_rows_3d() {
        let mesh = unit_cube(4, 4, 4);
        let part = partition_graph(&mesh.adjacency(), 2, 9);
        let (a_glob, _) = poisson::assemble_3d(&mesh, |_, _, _| 0.0);
        let sub = extract_3d(&mesh, &part.owner, 0);
        let (a_loc, _) = poisson::assemble_3d(&sub.mesh, |_, _, _| 0.0);
        let mut checked = 0;
        for (li, &gi) in sub.local_to_global.iter().enumerate() {
            if !sub.owned[li] {
                continue;
            }
            let (lc, lv) = a_loc.row(li);
            let (gc, _gv) = a_glob.row(gi);
            assert_eq!(lc.len(), gc.len());
            let sum_l: f64 = lv.iter().sum();
            let sum_g: f64 = a_glob.row(gi).1.iter().sum();
            assert!((sum_l - sum_g).abs() < 1e-12);
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn ghost_nodes_are_external_interface() {
        let mesh = unit_square(6, 6);
        let part = partition_graph(&mesh.adjacency(), 2, 2);
        let sub = extract_2d(&mesh, &part.owner, 0);
        let n_ghost = sub.owned.iter().filter(|&&o| !o).count();
        assert!(n_ghost > 0, "a 2-way split must have ghosts");
        // Each ghost must be adjacent (share an element) with an owned node.
        for (t, tri) in sub.mesh.triangles.iter().enumerate() {
            let _ = t;
            assert!(
                tri.iter().any(|&v| sub.owned[v]),
                "element without owned node retained"
            );
        }
    }
}
