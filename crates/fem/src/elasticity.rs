//! Plane linear elasticity (paper Test Case 6, Fig. 5).
//!
//! The paper's vector PDE: `−µ∇²u − (µ+λ)∇(∇·u) = f` on the quarter ring,
//! with `u₁ = 0` on `Γ₁` (the θ = 0 edge) and `u₂ = 0` on `Γ₂`
//! (the θ = π/2 edge); the stress vector is prescribed on the remaining
//! boundary (natural conditions in the weak form).
//!
//! Two displacement dofs per node, **interleaved**: node `i` owns dofs
//! `2i` (u₁) and `2i+1` (u₂). Interleaving keeps both dofs of a node in the
//! same subdomain under any node-based partition — exactly how the paper's
//! "each grid point is associated with two unknowns" setup behaves.

use crate::elements::TriGeom;
use parapre_grid::Mesh2d;
use parapre_sparse::{Coo, Csr};

/// Default first Lamé-type constant µ (shear modulus).
pub const MU: f64 = 1.0;
/// Default second constant λ.
pub const LAMBDA: f64 = 1.0;

/// Assembles the elasticity operator
/// `∫ µ ∇u₁·∇w₁ + µ ∇u₂·∇w₂ + (µ+λ)(∇·u)(∇·w) = ∫ f·w`.
///
/// `f` maps coordinates to the volume-load vector.
pub fn assemble_2d(
    mesh: &Mesh2d,
    mu: f64,
    lambda: f64,
    f: impl Fn(f64, f64) -> [f64; 2],
) -> (Csr, Vec<f64>) {
    let n_dofs = 2 * mesh.n_nodes();
    let mut coo = Coo::with_capacity(n_dofs, n_dofs, 36 * mesh.n_elems());
    let mut b = vec![0.0; n_dofs];
    for tri in &mesh.triangles {
        let g = TriGeom::new([
            mesh.coords[tri[0]],
            mesh.coords[tri[1]],
            mesh.coords[tri[2]],
        ]);
        let fe = f(g.centroid[0], g.centroid[1]);
        for i in 0..3 {
            for j in 0..3 {
                let lap = g.area * (g.grad[i][0] * g.grad[j][0] + g.grad[i][1] * g.grad[j][1]);
                for a in 0..2 {
                    for c in 0..2 {
                        // µ-Laplacian contributes only to matching components.
                        let mut v = if a == c { mu * lap } else { 0.0 };
                        // Grad-div term: (µ+λ) ∫ ∂w_a/∂x_a · ∂u_c/∂x_c.
                        v += (mu + lambda) * g.area * g.grad[i][a] * g.grad[j][c];
                        if v != 0.0 {
                            coo.push(2 * tri[i] + a, 2 * tri[j] + c, v);
                        }
                    }
                }
            }
            // Load with centroid quadrature.
            b[2 * tri[i]] += fe[0] * g.area / 3.0;
            b[2 * tri[i] + 1] += fe[1] * g.area / 3.0;
        }
    }
    (coo.to_csr(), b)
}

/// Collects the TC6 Dirichlet constraints on a quarter-ring mesh:
/// `u₁ = 0` on Γ₁ (y = 0) and `u₂ = 0` on Γ₂ (x = 0).
pub fn dirichlet_tc6(coords: &[[f64; 2]]) -> Vec<(usize, f64)> {
    let mut set = Vec::new();
    for (i, &p) in coords.iter().enumerate() {
        if parapre_grid::ring::on_gamma1(p) {
            set.push((2 * i, 0.0));
        }
        if parapre_grid::ring::on_gamma2(p) {
            set.push((2 * i + 1, 0.0));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc;
    use parapre_grid::ring::quarter_ring;
    use parapre_krylov::{CgConfig, ConjugateGradient, IdentityPrecond};

    #[test]
    fn operator_is_symmetric() {
        let mesh = quarter_ring(6, 6);
        let (a, _) = assemble_2d(&mesh, MU, LAMBDA, |_, _| [0.0, 0.0]);
        assert!(a.is_symmetric(1e-11));
        assert_eq!(a.n_rows(), 2 * mesh.n_nodes());
    }

    #[test]
    fn rigid_translation_in_null_space() {
        // Without BCs, a constant displacement produces zero force.
        let mesh = quarter_ring(5, 7);
        let (a, _) = assemble_2d(&mesh, MU, LAMBDA, |_, _| [0.0, 0.0]);
        let n = a.n_rows();
        let mut t = vec![0.0; n];
        for i in (0..n).step_by(2) {
            t[i] = 1.0; // uniform u1 translation
        }
        let at = a.mul_vec(&t);
        assert!(at.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn constrained_ring_solves_and_respects_bcs() {
        let mesh = quarter_ring(8, 8);
        // Outward unit volume load.
        let (a, b) = assemble_2d(&mesh, MU, LAMBDA, |x, y| {
            let r = (x * x + y * y).sqrt();
            [x / r, y / r]
        });
        let mut sys = crate::LinearSystem { a, b };
        let fixed = dirichlet_tc6(&mesh.coords);
        assert!(!fixed.is_empty());
        bc::apply_dirichlet(&mut sys, &fixed);
        let n = sys.b.len();
        let mut x = vec![0.0; n];
        let rep = ConjugateGradient::new(CgConfig {
            max_iters: 4000,
            rel_tol: 1e-8,
            ..Default::default()
        })
        .solve(&sys.a, &IdentityPrecond::new(n), &sys.b, &mut x);
        assert!(rep.converged, "relres {}", rep.final_relres);
        for (i, &p) in mesh.coords.iter().enumerate() {
            if parapre_grid::ring::on_gamma1(p) {
                assert!(x[2 * i].abs() < 1e-9);
            }
            if parapre_grid::ring::on_gamma2(p) {
                assert!(x[2 * i + 1].abs() < 1e-9);
            }
        }
        // Load pushes outward: radial displacement is positive somewhere.
        let mid = mesh.n_nodes() / 2;
        let p = mesh.coords[mid];
        let ur = x[2 * mid] * p[0] + x[2 * mid + 1] * p[1];
        assert!(ur > 0.0, "radial displacement {ur}");
    }

    #[test]
    fn dirichlet_set_pins_one_component_per_edge() {
        let mesh = quarter_ring(5, 9);
        let set = dirichlet_tc6(&mesh.coords);
        // 5 nodes on each straight edge, one dof each.
        assert_eq!(set.len(), 10);
        // Γ1 pins even dofs, Γ2 odd dofs.
        for &(d, v) in &set {
            assert_eq!(v, 0.0);
            let node = d / 2;
            let p = mesh.coords[node];
            if d % 2 == 0 {
                assert!(parapre_grid::ring::on_gamma1(p));
            } else {
                assert!(parapre_grid::ring::on_gamma2(p));
            }
        }
    }
}
