//! One implicit-Euler step of the heat equation (paper Test Case 4).
//!
//! `u_t = k∇²u` discretized as `(M + Δt·K) uˡ = M uˡ⁻¹` (paper eq. 12–13,
//! `k = 1`). The paper runs a single step from
//! `u⁰(x, y) = sin(πx)·sin(πy)` with `Δt = 0.05`, `u = 0` on the face
//! `x = 1` and homogeneous Neumann elsewhere; the *initial guess* of the
//! Krylov solve is the initial condition (paper §4.3).

use crate::elements::TetGeom;
use parapre_grid::Mesh3d;
use parapre_sparse::{Coo, Csr};

/// The paper's time step.
pub const DT: f64 = 0.05;

/// The paper's initial condition `u⁰(x, y, z) = sin(πx)·sin(πy)`.
pub fn initial_condition(x: f64, y: f64, _z: f64) -> f64 {
    (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
}

/// Assembles the mass and stiffness matrices on a tetrahedral mesh.
pub fn assemble_mass_stiffness(mesh: &Mesh3d) -> (Csr, Csr) {
    let n = mesh.n_nodes();
    let mut mc = Coo::with_capacity(n, n, 16 * mesh.n_elems());
    let mut kc = Coo::with_capacity(n, n, 16 * mesh.n_elems());
    for tet in &mesh.tets {
        let g = TetGeom::new([
            mesh.coords[tet[0]],
            mesh.coords[tet[1]],
            mesh.coords[tet[2]],
            mesh.coords[tet[3]],
        ]);
        let ke = g.stiffness();
        let me = g.mass();
        for i in 0..4 {
            for j in 0..4 {
                kc.push(tet[i], tet[j], ke[i][j]);
                mc.push(tet[i], tet[j], me[i][j]);
            }
        }
    }
    (mc.to_csr(), kc.to_csr())
}

/// Builds the Test Case 4 system `(M + Δt·K) uˡ = M uˡ⁻¹` for one step from
/// the nodal values `u_prev`.
pub fn assemble_step(mesh: &Mesh3d, dt: f64, u_prev: &[f64]) -> crate::LinearSystem {
    assert_eq!(u_prev.len(), mesh.n_nodes());
    let (m, k) = assemble_mass_stiffness(mesh);
    let a = m.add(dt, &k).expect("shapes match");
    let b = m.mul_vec(u_prev);
    crate::LinearSystem { a, b }
}

/// Precomputed operators for marching the TC4 heat equation many implicit
/// steps with a *fixed* system matrix.
///
/// The matrix `M + Δt·K` (with the paper's `u = 0` on the `x = 1` face
/// eliminated) never changes across steps, so a solver can factor it once;
/// only the right-hand side `M uˡ⁻¹` is rebuilt per step via
/// [`HeatMarch::rhs`].
pub struct HeatMarch {
    /// The eliminated system matrix `M + Δt·K` — factor once, reuse.
    pub a: Csr,
    /// The raw (pre-elimination) system matrix, needed for the per-step
    /// right-hand-side column sweep.
    pub a_raw: Csr,
    /// The mass matrix (per-step right-hand side `M uˡ⁻¹`).
    pub mass: Csr,
    /// The Dirichlet node set (`x = 1` face, value 0).
    pub fixed: Vec<(usize, f64)>,
    /// The time step.
    pub dt: f64,
}

impl HeatMarch {
    /// Assembles the marching operators on `mesh` with time step `dt`.
    pub fn new(mesh: &Mesh3d, dt: f64) -> HeatMarch {
        let (m, k) = assemble_mass_stiffness(mesh);
        let a_raw = m.add(dt, &k).expect("shapes match");
        let fixed =
            crate::bc::dirichlet_where(&mesh.coords, |p| (p[0] - 1.0).abs() < 1e-12, |_| 0.0);
        let mut sys = crate::LinearSystem {
            a: a_raw.clone(),
            b: vec![0.0; mesh.n_nodes()],
        };
        crate::bc::apply_dirichlet(&mut sys, &fixed);
        HeatMarch {
            a: sys.a,
            a_raw,
            mass: m,
            fixed,
            dt,
        }
    }

    /// The paper's initial state: `u⁰` sampled at the nodes, with the
    /// Dirichlet face clamped.
    pub fn initial_state(mesh: &Mesh3d) -> Vec<f64> {
        let mut u0: Vec<f64> = mesh
            .coords
            .iter()
            .map(|p| initial_condition(p[0], p[1], p[2]))
            .collect();
        for (i, p) in mesh.coords.iter().enumerate() {
            if (p[0] - 1.0).abs() < 1e-12 {
                u0[i] = 0.0;
            }
        }
        u0
    }

    /// The right-hand side of the next step from state `u_prev`:
    /// `M uˡ⁻¹` with the Dirichlet data applied (matching the once-
    /// eliminated [`HeatMarch::a`]).
    pub fn rhs(&self, u_prev: &[f64]) -> Vec<f64> {
        let mut b = self.mass.mul_vec(u_prev);
        crate::bc::apply_dirichlet_rhs(&self.a_raw, &mut b, &self.fixed);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc;
    use parapre_grid::structured::unit_cube;
    use parapre_krylov::{CgConfig, ConjugateGradient, IdentityPrecond};

    #[test]
    fn mass_matrix_integrates_volume() {
        let mesh = unit_cube(4, 4, 4);
        let (m, _) = assemble_mass_stiffness(&mesh);
        let ones = vec![1.0; m.n_rows()];
        let m1 = m.mul_vec(&ones);
        let total: f64 = m1.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "∫1 over cube = {total}");
    }

    #[test]
    fn system_matrix_is_spd_shifted_stiffness() {
        let mesh = unit_cube(4, 4, 4);
        let sys = assemble_step(&mesh, DT, &vec![0.0; mesh.n_nodes()]);
        assert!(sys.a.is_symmetric(1e-12));
        // Row sums equal the mass row sums (stiffness rows sum to zero).
        let ones = vec![1.0; sys.a.n_rows()];
        let row_sums = sys.a.mul_vec(&ones);
        assert!(row_sums.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn heat_march_first_step_matches_single_step_assembly() {
        let mesh = unit_cube(5, 5, 5);
        let u0 = HeatMarch::initial_state(&mesh);
        let march = HeatMarch::new(&mesh, DT);
        // Reference: assemble + eliminate the one-step system from scratch.
        let mut sys = assemble_step(&mesh, DT, &u0);
        let fixed = bc::dirichlet_where(&mesh.coords, |p| (p[0] - 1.0).abs() < 1e-12, |_| 0.0);
        bc::apply_dirichlet(&mut sys, &fixed);
        assert_eq!(march.a, sys.a);
        assert_eq!(march.rhs(&u0), sys.b);
    }

    #[test]
    fn marching_decays_the_mode_monotonically() {
        let mesh = unit_cube(5, 5, 5);
        let march = HeatMarch::new(&mesh, DT);
        let n = mesh.n_nodes();
        let mut u = HeatMarch::initial_state(&mesh);
        let mut amp_prev = u.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for _step in 0..5 {
            let b = march.rhs(&u);
            let mut next = u.clone();
            let rep = ConjugateGradient::new(CgConfig {
                max_iters: 2000,
                rel_tol: 1e-12,
                ..Default::default()
            })
            .solve(&march.a, &IdentityPrecond::new(n), &b, &mut next);
            assert!(rep.converged);
            u = next;
            let amp = u.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(amp < amp_prev, "diffusion must decay: {amp} vs {amp_prev}");
            amp_prev = amp;
        }
    }

    #[test]
    fn one_step_decays_the_mode() {
        // With u = 0 at x = 1 and Neumann elsewhere, one implicit step of
        // the sin(πx)sin(πy) mode must shrink it (diffusion decays modes)
        // and keep values bounded by the maximum principle (up to FEM slop).
        let mesh = unit_cube(6, 6, 6);
        let n = mesh.n_nodes();
        let u0: Vec<f64> = mesh
            .coords
            .iter()
            .map(|p| initial_condition(p[0], p[1], p[2]))
            .collect();
        let mut sys = assemble_step(&mesh, DT, &u0);
        let fixed = bc::dirichlet_where(&mesh.coords, |p| (p[0] - 1.0).abs() < 1e-12, |_| 0.0);
        bc::apply_dirichlet(&mut sys, &fixed);
        let mut u1 = u0.clone();
        let rep = ConjugateGradient::new(CgConfig {
            max_iters: 2000,
            rel_tol: 1e-10,
            ..Default::default()
        })
        .solve(&sys.a, &IdentityPrecond::new(n), &sys.b, &mut u1);
        assert!(rep.converged);
        let amp0 = u0.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let amp1 = u1.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(amp1 < amp0, "mode must decay: {amp1} vs {amp0}");
        assert!(amp1 > 0.2 * amp0, "should not vanish in one step: {amp1}");
        // Dirichlet face honoured.
        for (i, p) in mesh.coords.iter().enumerate() {
            if (p[0] - 1.0).abs() < 1e-12 {
                assert!(u1[i].abs() < 1e-9);
            }
        }
    }
}
