//! Boundary-condition application.
//!
//! Dirichlet conditions are imposed by row elimination: the matrix row of a
//! constrained node is replaced by the identity row and the right-hand side
//! by the boundary value. The CSR *structure* is preserved (off-diagonal
//! entries are zeroed, not removed), which keeps assembly and ILU patterns
//! stable. Homogeneous Neumann conditions are natural for the P1 weak forms
//! used here and require no action.

use crate::LinearSystem;

/// Imposes `x[i] = value` for every `(i, value)` pair.
///
/// The affected rows become identity rows; to preserve symmetry-of-action
/// the known values are *also* eliminated from the other rows' right-hand
/// sides (column sweep), so an SPD operator stays SPD on the free unknowns.
pub fn apply_dirichlet(sys: &mut LinearSystem, nodes: &[(usize, f64)]) {
    let n = sys.b.len();
    assert_eq!(sys.a.n_rows(), n);
    let mut is_fixed = vec![false; n];
    let mut value = vec![0.0; n];
    for &(i, v) in nodes {
        assert!(i < n, "dirichlet node {i} out of range");
        is_fixed[i] = true;
        value[i] = v;
    }
    // Column elimination: b_j -= a_ji * g_i for free rows j.
    // Done row-wise over the CSR (each row subtracts its fixed-column terms).
    let row_ptr = sys.a.row_ptr().to_vec();
    let col_idx = sys.a.col_idx().to_vec();
    {
        let vals = sys.a.vals_mut();
        for i in 0..n {
            if is_fixed[i] {
                // Identity row.
                for k in row_ptr[i]..row_ptr[i + 1] {
                    vals[k] = if col_idx[k] == i { 1.0 } else { 0.0 };
                }
                sys.b[i] = value[i];
            } else {
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let j = col_idx[k];
                    if is_fixed[j] {
                        sys.b[i] -= vals[k] * value[j];
                        vals[k] = 0.0;
                    }
                }
            }
        }
    }
}

/// Applies the same Dirichlet data to a *right-hand side only*, given the
/// original (pre-elimination) matrix.
///
/// Reproduces exactly what [`apply_dirichlet`] does to `b` — boundary rows
/// set to their values, the column sweep folded into free rows — without
/// touching any matrix. This is the time-stepping workhorse: eliminate the
/// system matrix once (factor once), then push each new step's raw
/// right-hand side through this with the *original* matrix's columns.
pub fn apply_dirichlet_rhs(
    a_original: &parapre_sparse::Csr,
    b: &mut [f64],
    nodes: &[(usize, f64)],
) {
    let n = b.len();
    assert_eq!(a_original.n_rows(), n);
    let mut is_fixed = vec![false; n];
    let mut value = vec![0.0; n];
    for &(i, v) in nodes {
        assert!(i < n, "dirichlet node {i} out of range");
        is_fixed[i] = true;
        value[i] = v;
    }
    for i in 0..n {
        if is_fixed[i] {
            b[i] = value[i];
        } else {
            let (cols, vals) = a_original.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if is_fixed[j] {
                    b[i] -= v * value[j];
                }
            }
        }
    }
}

/// Convenience: collects `(node, g(coords))` pairs from a predicate over
/// node coordinates.
pub fn dirichlet_where<const D: usize>(
    coords: &[[f64; D]],
    select: impl Fn([f64; D]) -> bool,
    g: impl Fn([f64; D]) -> f64,
) -> Vec<(usize, f64)> {
    coords
        .iter()
        .enumerate()
        .filter(|(_, &p)| select(p))
        .map(|(i, &p)| (i, g(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapre_sparse::Csr;

    #[test]
    fn dirichlet_rows_become_identity() {
        let a = Csr::from_dense_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let mut sys = LinearSystem {
            a,
            b: vec![1.0, 1.0, 1.0],
        };
        apply_dirichlet(&mut sys, &[(0, 5.0)]);
        assert_eq!(sys.a.get(0, 0), 1.0);
        assert_eq!(sys.a.get(0, 1), 0.0);
        assert_eq!(sys.b[0], 5.0);
        // Column elimination moved the known value to row 1's rhs.
        assert_eq!(sys.a.get(1, 0), 0.0);
        assert_eq!(sys.b[1], 1.0 + 5.0);
        // Symmetry preserved.
        assert!(sys.a.is_symmetric(0.0));
    }

    #[test]
    fn solution_attains_boundary_values() {
        // 1-D Laplace with u(0)=1, u(4)=3: solution is linear.
        let n = 5;
        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            rows[i][i] = 2.0;
            if i > 0 {
                rows[i][i - 1] = -1.0;
            }
            if i + 1 < n {
                rows[i][i + 1] = -1.0;
            }
        }
        let mut sys = LinearSystem {
            a: Csr::from_dense_rows(&rows),
            b: vec![0.0; n],
        };
        apply_dirichlet(&mut sys, &[(0, 1.0), (4, 3.0)]);
        // Solve densely.
        let mut d = parapre_sparse::Dense::zeros(n, n);
        for (i, j, v) in sys.a.iter() {
            d[(i, j)] = v;
        }
        let lu = parapre_sparse::dense::DenseLu::factor(d).unwrap();
        let x = lu.solve(&sys.b);
        for (i, &xi) in x.iter().enumerate() {
            let exact = 1.0 + 0.5 * i as f64;
            assert!((xi - exact).abs() < 1e-12, "x[{i}] = {xi}");
        }
    }

    #[test]
    fn rhs_only_application_matches_full_elimination() {
        let a = Csr::from_dense_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let nodes = [(0, 5.0), (2, -1.0)];
        let mut sys = LinearSystem {
            a: a.clone(),
            b: vec![1.0, 2.0, 3.0],
        };
        apply_dirichlet(&mut sys, &nodes);
        let mut b = vec![1.0, 2.0, 3.0];
        apply_dirichlet_rhs(&a, &mut b, &nodes);
        assert_eq!(b, sys.b);
    }

    #[test]
    fn dirichlet_where_selects_by_coordinate() {
        let coords = [[0.0, 0.0], [0.5, 0.0], [1.0, 0.0]];
        let set = dirichlet_where(&coords, |p| p[0] < 0.25, |p| p[0] + 10.0);
        assert_eq!(set, vec![(0, 10.0)]);
    }
}
