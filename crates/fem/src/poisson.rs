//! Poisson equation `−∇²u = f` (paper Test Cases 1–3).
//!
//! The paper's manufactured data: TC1/TC3 use `u = x·e^y` on the boundary,
//! TC2 uses `u = x·e^{yz}`; the right-hand sides are chosen compatibly
//! (the paper writes the PDE as `∇²u = f`; we use the `−∇²u = f` sign
//! convention — the assembled matrix is identical, see DESIGN.md §5).

use crate::elements::{TetGeom, TriGeom};
use parapre_grid::{Mesh2d, Mesh3d};
use parapre_sparse::{Coo, Csr};

/// Assembles stiffness matrix and load vector on a 2-D triangular mesh:
/// `∫∇u·∇v = ∫ f v` (no boundary conditions applied yet).
pub fn assemble_2d(mesh: &Mesh2d, f: impl Fn(f64, f64) -> f64) -> (Csr, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut coo = Coo::with_capacity(n, n, 9 * mesh.n_elems());
    let mut b = vec![0.0; n];
    for tri in &mesh.triangles {
        let g = TriGeom::new([
            mesh.coords[tri[0]],
            mesh.coords[tri[1]],
            mesh.coords[tri[2]],
        ]);
        let ke = g.stiffness();
        let fe = g.load(f(g.centroid[0], g.centroid[1]));
        for i in 0..3 {
            for j in 0..3 {
                coo.push(tri[i], tri[j], ke[i][j]);
            }
            b[tri[i]] += fe[i];
        }
    }
    (coo.to_csr(), b)
}

/// Assembles stiffness matrix and load vector on a 3-D tetrahedral mesh.
pub fn assemble_3d(mesh: &Mesh3d, f: impl Fn(f64, f64, f64) -> f64) -> (Csr, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut coo = Coo::with_capacity(n, n, 16 * mesh.n_elems());
    let mut b = vec![0.0; n];
    for tet in &mesh.tets {
        let g = TetGeom::new([
            mesh.coords[tet[0]],
            mesh.coords[tet[1]],
            mesh.coords[tet[2]],
            mesh.coords[tet[3]],
        ]);
        let ke = g.stiffness();
        let fe = g.load(f(g.centroid[0], g.centroid[1], g.centroid[2]));
        for i in 0..4 {
            for j in 0..4 {
                coo.push(tet[i], tet[j], ke[i][j]);
            }
            b[tet[i]] += fe[i];
        }
    }
    (coo.to_csr(), b)
}

/// The TC1/TC3 exact solution `u(x, y) = x·e^y`.
pub fn exact_tc1(x: f64, y: f64) -> f64 {
    x * y.exp()
}

/// Right-hand side compatible with [`exact_tc1`] under `−∇²u = f`.
pub fn rhs_tc1(x: f64, y: f64) -> f64 {
    -x * y.exp()
}

/// The TC2 exact solution `u(x, y, z) = x·e^{yz}`.
pub fn exact_tc2(x: f64, y: f64, z: f64) -> f64 {
    x * (y * z).exp()
}

/// Right-hand side compatible with [`exact_tc2`] under `−∇²u = f`.
pub fn rhs_tc2(x: f64, y: f64, z: f64) -> f64 {
    -x * (y * y + z * z) * (y * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc;
    use parapre_grid::structured::{unit_cube, unit_square};
    use parapre_krylov::{ConjugateGradient, IdentityPrecond};

    fn l2_error_2d(nx: usize) -> f64 {
        let mesh = unit_square(nx, nx);
        let (a, b) = assemble_2d(&mesh, rhs_tc1);
        let mut sys = crate::LinearSystem { a, b };
        let boundary = mesh.boundary_nodes();
        let dirichlet: Vec<(usize, f64)> = boundary
            .iter()
            .enumerate()
            .filter(|&(_, &on)| on)
            .map(|(i, _)| (i, exact_tc1(mesh.coords[i][0], mesh.coords[i][1])))
            .collect();
        bc::apply_dirichlet(&mut sys, &dirichlet);
        let n = sys.b.len();
        let mut x = vec![0.0; n];
        let rep = ConjugateGradient::new(parapre_krylov::CgConfig {
            max_iters: 4000,
            rel_tol: 1e-10,
            ..Default::default()
        })
        .solve(&sys.a, &IdentityPrecond::new(n), &sys.b, &mut x);
        assert!(rep.converged);
        let mut err2 = 0.0;
        for (i, p) in mesh.coords.iter().enumerate() {
            let e = x[i] - exact_tc1(p[0], p[1]);
            err2 += e * e;
        }
        (err2 / n as f64).sqrt()
    }

    #[test]
    fn poisson_2d_converges_quadratically() {
        let e1 = l2_error_2d(6);
        let e2 = l2_error_2d(12);
        // P1 elements: O(h²) in L2; halving h divides the error by ~4.
        assert!(e2 < e1 / 2.8, "e1 = {e1}, e2 = {e2}");
        assert!(e1 < 1e-2);
    }

    #[test]
    fn stiffness_2d_symmetric_and_singular_before_bc() {
        let mesh = unit_square(6, 6);
        let (a, _) = assemble_2d(&mesh, |_, _| 1.0);
        assert!(a.is_symmetric(1e-12));
        // Constant vector in the null space.
        let ones = vec![1.0; a.n_rows()];
        let az = a.mul_vec(&ones);
        assert!(az.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn poisson_3d_manufactured_solution() {
        let mesh = unit_cube(7, 7, 7);
        let (a, b) = assemble_3d(&mesh, rhs_tc2);
        let mut sys = crate::LinearSystem { a, b };
        let boundary = mesh.boundary_nodes();
        let dirichlet: Vec<(usize, f64)> = boundary
            .iter()
            .enumerate()
            .filter(|&(_, &on)| on)
            .map(|(i, _)| {
                let p = mesh.coords[i];
                (i, exact_tc2(p[0], p[1], p[2]))
            })
            .collect();
        bc::apply_dirichlet(&mut sys, &dirichlet);
        let n = sys.b.len();
        let mut x = vec![0.0; n];
        let rep = ConjugateGradient::new(parapre_krylov::CgConfig {
            max_iters: 3000,
            rel_tol: 1e-10,
            ..Default::default()
        })
        .solve(&sys.a, &IdentityPrecond::new(n), &sys.b, &mut x);
        assert!(rep.converged);
        let max_err = mesh
            .coords
            .iter()
            .enumerate()
            .map(|(i, p)| (x[i] - exact_tc2(p[0], p[1], p[2])).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 5e-3, "max error {max_err}");
    }

    #[test]
    fn stiffness_3d_rows_sum_to_zero() {
        let mesh = unit_cube(4, 4, 4);
        let (a, _) = assemble_3d(&mesh, |_, _, _| 0.0);
        let ones = vec![1.0; a.n_rows()];
        let az = a.mul_vec(&ones);
        assert!(az.iter().all(|v| v.abs() < 1e-12));
    }
}
