//! Discretization-error norms for manufactured-solution verification.
//!
//! Computes the L² norm and H¹ seminorm of `u_h − u` over a mesh, where
//! `u_h` is a P1 nodal field and `u` an analytic function. Used by the
//! verification tests (the paper's test cases 1–3 have closed-form
//! solutions) and by the convergence-study example.

use crate::elements::{TetGeom, TriGeom};
use parapre_grid::{Mesh2d, Mesh3d};

/// L² and H¹-seminorm errors of a P1 field against an exact solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorNorms {
    /// `‖u_h − u‖_{L²}`.
    pub l2: f64,
    /// `|u_h − u|_{H¹}` (gradient seminorm, with the exact gradient
    /// supplied analytically).
    pub h1_semi: f64,
}

/// Computes error norms on a triangular mesh.
///
/// `exact` evaluates `u(x, y)`; `exact_grad` its gradient. Quadrature: the
/// 3-midpoint rule (exact for quadratics) for L², one-point for the
/// piecewise-constant gradient difference.
pub fn error_norms_2d(
    mesh: &Mesh2d,
    uh: &[f64],
    exact: impl Fn(f64, f64) -> f64,
    exact_grad: impl Fn(f64, f64) -> [f64; 2],
) -> ErrorNorms {
    assert_eq!(uh.len(), mesh.n_nodes());
    let mut l2_sq = 0.0;
    let mut h1_sq = 0.0;
    for tri in &mesh.triangles {
        let p = [
            mesh.coords[tri[0]],
            mesh.coords[tri[1]],
            mesh.coords[tri[2]],
        ];
        let g = TriGeom::new(p);
        let v = [uh[tri[0]], uh[tri[1]], uh[tri[2]]];
        // Edge midpoints: quadrature weights area/3 each; P1 values are
        // averages of endpoint values.
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 0)] {
            let mx = 0.5 * (p[a][0] + p[b][0]);
            let my = 0.5 * (p[a][1] + p[b][1]);
            let uh_m = 0.5 * (v[a] + v[b]);
            let diff = uh_m - exact(mx, my);
            l2_sq += g.area / 3.0 * diff * diff;
        }
        // P1 gradient is constant: ∇u_h = Σ v_i ∇λ_i.
        let gx: f64 = (0..3).map(|i| v[i] * g.grad[i][0]).sum();
        let gy: f64 = (0..3).map(|i| v[i] * g.grad[i][1]).sum();
        let eg = exact_grad(g.centroid[0], g.centroid[1]);
        h1_sq += g.area * ((gx - eg[0]).powi(2) + (gy - eg[1]).powi(2));
    }
    ErrorNorms {
        l2: l2_sq.sqrt(),
        h1_semi: h1_sq.sqrt(),
    }
}

/// Computes error norms on a tetrahedral mesh (vertex+centroid quadrature
/// for L², one-point for the gradient).
pub fn error_norms_3d(
    mesh: &Mesh3d,
    uh: &[f64],
    exact: impl Fn(f64, f64, f64) -> f64,
    exact_grad: impl Fn(f64, f64, f64) -> [f64; 3],
) -> ErrorNorms {
    assert_eq!(uh.len(), mesh.n_nodes());
    let mut l2_sq = 0.0;
    let mut h1_sq = 0.0;
    for tet in &mesh.tets {
        let p = [
            mesh.coords[tet[0]],
            mesh.coords[tet[1]],
            mesh.coords[tet[2]],
            mesh.coords[tet[3]],
        ];
        let g = TetGeom::new(p);
        let v = [uh[tet[0]], uh[tet[1]], uh[tet[2]], uh[tet[3]]];
        // Simple vertex rule (weights V/4); adequate for convergence
        // monitoring.
        for i in 0..4 {
            let diff = v[i] - exact(p[i][0], p[i][1], p[i][2]);
            l2_sq += g.volume / 4.0 * diff * diff;
        }
        let mut grad = [0.0f64; 3];
        for i in 0..4 {
            for d in 0..3 {
                grad[d] += v[i] * g.grad[i][d];
            }
        }
        let eg = exact_grad(g.centroid[0], g.centroid[1], g.centroid[2]);
        h1_sq += g.volume
            * ((grad[0] - eg[0]).powi(2) + (grad[1] - eg[1]).powi(2) + (grad[2] - eg[2]).powi(2));
    }
    ErrorNorms {
        l2: l2_sq.sqrt(),
        h1_semi: h1_sq.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapre_grid::structured::{unit_cube, unit_square};

    #[test]
    fn exact_nodal_interpolant_of_linear_has_zero_error() {
        // u = 2x + 3y is in the P1 space: both norms vanish.
        let mesh = unit_square(6, 6);
        let uh: Vec<f64> = mesh
            .coords
            .iter()
            .map(|p| 2.0 * p[0] + 3.0 * p[1])
            .collect();
        let e = error_norms_2d(&mesh, &uh, |x, y| 2.0 * x + 3.0 * y, |_, _| [2.0, 3.0]);
        assert!(e.l2 < 1e-13, "l2 {}", e.l2);
        assert!(e.h1_semi < 1e-12, "h1 {}", e.h1_semi);
    }

    #[test]
    fn interpolation_error_converges_at_expected_rates() {
        // Interpolating u = sin(πx)sin(πy): L² error O(h²), H¹ error O(h).
        let errs: Vec<ErrorNorms> = [8usize, 16]
            .iter()
            .map(|&n| {
                let mesh = unit_square(n + 1, n + 1);
                let uh: Vec<f64> = mesh
                    .coords
                    .iter()
                    .map(|p| {
                        (std::f64::consts::PI * p[0]).sin() * (std::f64::consts::PI * p[1]).sin()
                    })
                    .collect();
                error_norms_2d(
                    &mesh,
                    &uh,
                    |x, y| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin(),
                    |x, y| {
                        let pi = std::f64::consts::PI;
                        [
                            pi * (pi * x).cos() * (pi * y).sin(),
                            pi * (pi * x).sin() * (pi * y).cos(),
                        ]
                    },
                )
            })
            .collect();
        assert!(errs[1].l2 < errs[0].l2 / 3.0, "{:?}", errs);
        assert!(errs[1].h1_semi < errs[0].h1_semi / 1.7, "{:?}", errs);
    }

    #[test]
    fn linear_field_exact_in_3d() {
        let mesh = unit_cube(4, 4, 4);
        let uh: Vec<f64> = mesh.coords.iter().map(|p| p[0] - 2.0 * p[2]).collect();
        let e = error_norms_3d(
            &mesh,
            &uh,
            |x, _, z| x - 2.0 * z,
            |_, _, _| [1.0, 0.0, -2.0],
        );
        assert!(e.l2 < 1e-13);
        assert!(e.h1_semi < 1e-12);
    }
}
