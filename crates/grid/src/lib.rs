//! # parapre-grid
//!
//! Computational grids for the paper's six test cases (Cai & Sosonkina,
//! IPPS 2003, §3):
//!
//! * [`structured::unit_square`] — uniform triangulated 2-D grids
//!   (Test Cases 1 and 5);
//! * [`structured::unit_cube`] — uniform tetrahedralized 3-D grids
//!   (Test Cases 2 and 4), Kuhn/Freudenthal 6-tet subdivision;
//! * [`ring::quarter_ring`] — the curvilinear structured grid of the
//!   quarter-ring elasticity domain (Test Case 6, paper Fig. 5);
//! * [`delaunay`] — a Bowyer–Watson Delaunay triangulator plus the
//!   square-with-circular-hole unstructured domain standing in for the
//!   paper's Fig. 3 grid (Test Case 3; see DESIGN.md for the substitution
//!   note).
//!
//! Meshes are plain index soups ([`Mesh2d`], [`Mesh3d`]): flat coordinate
//! and connectivity arrays, with derived quantities (boundary nodes, vertex
//! adjacency) computed on demand. The vertex adjacency in CSR form feeds
//! `parapre-partition` and the distributed-layout code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delaunay;
pub mod mesh;
pub mod refine;
pub mod ring;
pub mod structured;

pub use mesh::{Adjacency, Mesh2d, Mesh3d};
