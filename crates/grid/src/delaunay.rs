//! Bowyer–Watson Delaunay triangulation and the unstructured test domain.
//!
//! Test Case 3 of the paper runs on an unstructured 2-D grid of a special
//! domain (Fig. 3 — the figure is an image and not recoverable from the
//! scraped text). As documented in DESIGN.md we substitute a genuinely
//! unstructured triangulation of a **square with a circular hole**, built by
//! Delaunay-triangulating quasi-random interior points plus structured
//! boundary points and discarding triangles inside the hole. This exercises
//! the same code paths: irregular vertex degrees, a non-trivial nodal graph
//! for the general partitioner, and variable row lengths in the assembled
//! matrix.
//!
//! The triangulator is the classical Bowyer–Watson incremental algorithm
//! with walk-based point location and cavity retriangulation — `O(n log n)`
//! in practice for the jittered point sets used here.

use crate::mesh::Mesh2d;

const NONE: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Tri {
    /// CCW vertices.
    v: [usize; 3],
    /// `nbr[k]` = triangle across the edge opposite `v[k]` (`NONE` outside).
    nbr: [usize; 3],
    alive: bool,
}

/// `> 0` when `c` lies to the left of the directed line `a → b` (CCW turn).
#[inline]
fn orient2d(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> f64 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

/// `> 0` when `p` lies strictly inside the circumcircle of CCW `(a, b, c)`.
#[inline]
fn in_circumcircle(a: [f64; 2], b: [f64; 2], c: [f64; 2], p: [f64; 2]) -> bool {
    let ax = a[0] - p[0];
    let ay = a[1] - p[1];
    let bx = b[0] - p[0];
    let by = b[1] - p[1];
    let cx = c[0] - p[0];
    let cy = c[1] - p[1];
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by) - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det > 0.0
}

/// Incremental Delaunay triangulator.
pub struct Triangulator {
    points: Vec<[f64; 2]>,
    tris: Vec<Tri>,
    last: usize,
    n_real: usize,
}

impl Triangulator {
    /// Triangulates a point set; duplicate points must be pre-removed.
    ///
    /// # Panics
    /// Panics when fewer than 3 points are supplied.
    pub fn triangulate(points: &[[f64; 2]]) -> Mesh2d {
        assert!(points.len() >= 3, "need at least 3 points");
        let n = points.len();
        // Bounding box → generous super-triangle.
        let (mut xmin, mut ymin) = (f64::INFINITY, f64::INFINITY);
        let (mut xmax, mut ymax) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            xmin = xmin.min(p[0]);
            xmax = xmax.max(p[0]);
            ymin = ymin.min(p[1]);
            ymax = ymax.max(p[1]);
        }
        let d = (xmax - xmin).max(ymax - ymin).max(1e-9);
        let cx = 0.5 * (xmin + xmax);
        let cy = 0.5 * (ymin + ymax);
        let mut all = points.to_vec();
        all.push([cx - 20.0 * d, cy - 10.0 * d]);
        all.push([cx + 20.0 * d, cy - 10.0 * d]);
        all.push([cx, cy + 20.0 * d]);

        let mut t = Triangulator {
            points: all,
            tris: vec![Tri {
                v: [n, n + 1, n + 2],
                nbr: [NONE; 3],
                alive: true,
            }],
            last: 0,
            n_real: n,
        };
        // Insert in Morton (Z-curve) order for walk locality.
        let mut order: Vec<usize> = (0..n).collect();
        let scale = 65535.0 / d.max(1e-300);
        let key = |p: [f64; 2]| -> u64 {
            let xi = (((p[0] - xmin) * scale) as u64).min(65535);
            let yi = (((p[1] - ymin) * scale) as u64).min(65535);
            interleave(xi) | (interleave(yi) << 1)
        };
        order.sort_by_key(|&i| key(points[i]));
        for &i in &order {
            t.insert(i);
        }
        t.finish()
    }

    fn insert(&mut self, pi: usize) {
        let p = self.points[pi];
        let t0 = self.locate(p);
        // Grow the cavity: all triangles whose circumcircle contains p.
        let mut cavity = Vec::new();
        let mut stack = vec![t0];
        let mut in_cavity = std::collections::HashSet::new();
        in_cavity.insert(t0);
        while let Some(t) = stack.pop() {
            cavity.push(t);
            for k in 0..3 {
                let nb = self.tris[t].nbr[k];
                if nb != NONE && !in_cavity.contains(&nb) {
                    let tv = self.tris[nb].v;
                    if in_circumcircle(
                        self.points[tv[0]],
                        self.points[tv[1]],
                        self.points[tv[2]],
                        p,
                    ) {
                        in_cavity.insert(nb);
                        stack.push(nb);
                    }
                }
            }
        }
        // Boundary edges of the cavity, oriented CCW as seen from inside.
        // Edge opposite v[k] of triangle t is (v[k+1], v[k+2]).
        let mut boundary: Vec<(usize, usize, usize)> = Vec::new(); // (a, b, outer)
        for &t in &cavity {
            let tri = self.tris[t];
            for k in 0..3 {
                let nb = tri.nbr[k];
                if nb == NONE || !in_cavity.contains(&nb) {
                    boundary.push((tri.v[(k + 1) % 3], tri.v[(k + 2) % 3], nb));
                }
            }
        }
        for &t in &cavity {
            self.tris[t].alive = false;
        }
        // Fan retriangulation.
        let mut edge_map = std::collections::HashMap::new();
        let mut new_ids = Vec::with_capacity(boundary.len());
        for &(a, b, outer) in &boundary {
            let id = self.tris.len();
            self.tris.push(Tri {
                v: [a, b, pi],
                nbr: [NONE, NONE, outer],
                alive: true,
            });
            // Fix the outer triangle's back pointer.
            if outer != NONE {
                let ot = &mut self.tris[outer];
                for k in 0..3 {
                    let (oa, ob) = (ot.v[(k + 1) % 3], ot.v[(k + 2) % 3]);
                    if (oa == b && ob == a) || (oa == a && ob == b) {
                        ot.nbr[k] = id;
                    }
                }
            }
            edge_map.insert((a, pi), (id, 1usize)); // edge (a,p) opposite v[1]=b
            edge_map.insert((pi, b), (id, 0usize)); // edge (p,b) opposite v[0]=a
            new_ids.push(id);
        }
        // Stitch the fan: edge (p,a) of one new tri matches edge (a,p) of another.
        for &id in &new_ids {
            let [a, b, _] = self.tris[id].v;
            if let Some(&(other, slot)) = edge_map.get(&(pi, a)) {
                self.tris[id].nbr[1] = other;
                self.tris[other].nbr[slot] = id;
            }
            if let Some(&(other, slot)) = edge_map.get(&(b, pi)) {
                self.tris[id].nbr[0] = other;
                self.tris[other].nbr[slot] = id;
            }
        }
        self.last = *new_ids.last().expect("cavity always has boundary");
    }

    /// Walks from `self.last` towards the triangle containing `p`.
    fn locate(&self, p: [f64; 2]) -> usize {
        let mut t = self.last;
        if !self.tris[t].alive {
            t = self
                .tris
                .iter()
                .rposition(|tr| tr.alive)
                .expect("triangulation never empty");
        }
        let max_steps = 4 * self.tris.len() + 16;
        for _ in 0..max_steps {
            let tri = self.tris[t];
            let mut moved = false;
            for k in 0..3 {
                let a = self.points[tri.v[(k + 1) % 3]];
                let b = self.points[tri.v[(k + 2) % 3]];
                if orient2d(a, b, p) < 0.0 && tri.nbr[k] != NONE {
                    t = tri.nbr[k];
                    moved = true;
                    break;
                }
            }
            if !moved {
                return t;
            }
        }
        // Degenerate walk (collinear clusters): brute-force fallback.
        for (i, tri) in self.tris.iter().enumerate() {
            if !tri.alive {
                continue;
            }
            let a = self.points[tri.v[0]];
            let b = self.points[tri.v[1]];
            let c = self.points[tri.v[2]];
            if orient2d(a, b, p) >= 0.0 && orient2d(b, c, p) >= 0.0 && orient2d(c, a, p) >= 0.0 {
                return i;
            }
        }
        t
    }

    fn finish(self) -> Mesh2d {
        let n = self.n_real;
        let triangles: Vec<[usize; 3]> = self
            .tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v < n))
            .map(|t| t.v)
            .collect();
        Mesh2d {
            coords: self.points[..n].to_vec(),
            triangles,
        }
    }
}

/// Spreads the low 16 bits of `x` to even bit positions (Morton helper).
fn interleave(mut x: u64) -> u64 {
    x &= 0xFFFF;
    x = (x | (x << 8)) & 0x00FF00FF;
    x = (x | (x << 4)) & 0x0F0F0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// Side length of the square test-case domain.
pub const DOMAIN_SIDE: f64 = 4.0;
/// Center of the circular hole.
pub const HOLE_CENTER: [f64; 2] = [2.0, 2.0];
/// Radius of the circular hole.
pub const HOLE_RADIUS: f64 = 1.0;

/// Builds the unstructured square-with-circular-hole mesh with roughly
/// `n_target` nodes (paper TC3 substitute). `seed` jitters the interior
/// points, emulating independent mesh generations.
pub fn square_with_hole(n_target: usize, seed: u64) -> Mesh2d {
    assert!(n_target >= 32, "mesh too small to resolve the hole");
    // Solve for a grid pitch giving ≈ n_target points in the punched square.
    let area = DOMAIN_SIDE * DOMAIN_SIDE - std::f64::consts::PI * HOLE_RADIUS * HOLE_RADIUS;
    let h = (area / n_target as f64).sqrt();
    let m = (DOMAIN_SIDE / h).round() as usize; // cells per side
    let h = DOMAIN_SIDE / m as f64;

    let mut pts: Vec<[f64; 2]> = Vec::new();
    // Square boundary.
    for i in 0..m {
        let s = i as f64 * h;
        pts.push([s, 0.0]);
        pts.push([DOMAIN_SIDE, s]);
        pts.push([DOMAIN_SIDE - s, DOMAIN_SIDE]);
        pts.push([0.0, DOMAIN_SIDE - s]);
    }
    // Hole boundary.
    let n_circ = ((2.0 * std::f64::consts::PI * HOLE_RADIUS) / h).ceil() as usize;
    for k in 0..n_circ {
        let th = 2.0 * std::f64::consts::PI * k as f64 / n_circ as f64;
        pts.push([
            HOLE_CENTER[0] + HOLE_RADIUS * th.cos(),
            HOLE_CENTER[1] + HOLE_RADIUS * th.sin(),
        ]);
    }
    // Jittered interior points.
    let mut state = seed.wrapping_mul(2685821657736338717) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for j in 1..m {
        for i in 1..m {
            let x = i as f64 * h + 0.45 * h * rnd();
            let y = j as f64 * h + 0.45 * h * rnd();
            let dx = x - HOLE_CENTER[0];
            let dy = y - HOLE_CENTER[1];
            // Keep clear of the hole rim and the outer boundary.
            if (dx * dx + dy * dy).sqrt() > HOLE_RADIUS + 0.6 * h
                && x > 0.4 * h
                && x < DOMAIN_SIDE - 0.4 * h
                && y > 0.4 * h
                && y < DOMAIN_SIDE - 0.4 * h
            {
                pts.push([x, y]);
            }
        }
    }
    let mesh = Triangulator::triangulate(&pts);
    // Punch the hole: drop triangles whose centroid lies inside it.
    let triangles: Vec<[usize; 3]> = mesh
        .triangles
        .iter()
        .copied()
        .filter(|t| {
            let c = t.iter().fold([0.0, 0.0], |acc, &v| {
                [
                    acc[0] + mesh.coords[v][0] / 3.0,
                    acc[1] + mesh.coords[v][1] / 3.0,
                ]
            });
            let dx = c[0] - HOLE_CENTER[0];
            let dy = c[1] - HOLE_CENTER[1];
            dx * dx + dy * dy > HOLE_RADIUS * HOLE_RADIUS
        })
        .collect();
    // Drop now-unreferenced nodes (e.g. none usually) and compact indices.
    compact(mesh.coords, triangles)
}

/// Removes unreferenced nodes and renumbers the triangles.
fn compact(coords: Vec<[f64; 2]>, triangles: Vec<[usize; 3]>) -> Mesh2d {
    let mut used = vec![false; coords.len()];
    for t in &triangles {
        for &v in t {
            used[v] = true;
        }
    }
    let mut remap = vec![usize::MAX; coords.len()];
    let mut new_coords = Vec::new();
    for (i, &u) in used.iter().enumerate() {
        if u {
            remap[i] = new_coords.len();
            new_coords.push(coords[i]);
        }
    }
    let new_tris = triangles
        .into_iter()
        .map(|t| [remap[t[0]], remap[t[1]], remap[t[2]]])
        .collect();
    Mesh2d {
        coords: new_coords,
        triangles: new_tris,
    }
}

/// True when node `p` lies on the outer square boundary of the TC3 domain.
pub fn on_outer_boundary(p: [f64; 2]) -> bool {
    let eps = 1e-9;
    p[0].abs() < eps
        || p[1].abs() < eps
        || (p[0] - DOMAIN_SIDE).abs() < eps
        || (p[1] - DOMAIN_SIDE).abs() < eps
}

/// True when node `p` lies on the hole rim.
pub fn on_hole_boundary(p: [f64; 2]) -> bool {
    let dx = p[0] - HOLE_CENTER[0];
    let dy = p[1] - HOLE_CENTER[1];
    ((dx * dx + dy * dy).sqrt() - HOLE_RADIUS).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangulates_a_square_of_4_points() {
        let pts = [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let m = Triangulator::triangulate(&pts);
        assert_eq!(m.n_elems(), 2);
        m.check();
        assert!((m.total_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delaunay_empty_circumcircle_property() {
        // Deterministic pseudo-random cloud.
        let mut state = 12345u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<[f64; 2]> = (0..60).map(|_| [rnd(), rnd()]).collect();
        let m = Triangulator::triangulate(&pts);
        m.check();
        for t in &m.triangles {
            let (a, b, c) = (m.coords[t[0]], m.coords[t[1]], m.coords[t[2]]);
            for (i, &p) in m.coords.iter().enumerate() {
                if t.contains(&i) {
                    continue;
                }
                // Allow tiny numerical slack on near-cocircular clouds.
                let ax = a[0] - p[0];
                let ay = a[1] - p[1];
                let bx = b[0] - p[0];
                let by = b[1] - p[1];
                let cx = c[0] - p[0];
                let cy = c[1] - p[1];
                let det = (ax * ax + ay * ay) * (bx * cy - cx * by)
                    - (bx * bx + by * by) * (ax * cy - cx * ay)
                    + (cx * cx + cy * cy) * (ax * by - bx * ay);
                assert!(det <= 1e-9, "point {i} inside circumcircle of {t:?}: {det}");
            }
        }
    }

    #[test]
    fn convex_cloud_euler_formula() {
        // For a triangulation of a point set whose hull has h vertices:
        // T = 2n − h − 2 triangles.
        let pts = [
            [0.0, 0.0],
            [2.0, 0.0],
            [2.0, 2.0],
            [0.0, 2.0],
            [1.0, 1.0],
            [0.5, 0.7],
            [1.5, 1.2],
        ];
        let m = Triangulator::triangulate(&pts);
        let h = 4; // square hull
        assert_eq!(m.n_elems(), 2 * pts.len() - h - 2);
    }

    #[test]
    fn hole_mesh_has_expected_size_and_topology() {
        let m = square_with_hole(600, 42);
        m.check();
        let n = m.n_nodes();
        assert!(n > 400 && n < 900, "n = {n}");
        // Area ≈ 16 − π.
        let exact = DOMAIN_SIDE * DOMAIN_SIDE - std::f64::consts::PI;
        assert!(
            (m.total_area() - exact).abs() / exact < 0.02,
            "area {}",
            m.total_area()
        );
        // Both boundary families present.
        let b = m.boundary_nodes();
        let outer = m
            .coords
            .iter()
            .zip(&b)
            .filter(|(p, &ob)| ob && on_outer_boundary(**p))
            .count();
        let hole = m
            .coords
            .iter()
            .zip(&b)
            .filter(|(p, &ob)| ob && on_hole_boundary(**p))
            .count();
        assert!(outer > 20, "outer boundary nodes {outer}");
        assert!(hole > 10, "hole boundary nodes {hole}");
    }

    #[test]
    fn different_seeds_give_different_meshes() {
        let a = square_with_hole(300, 1);
        let b = square_with_hole(300, 2);
        assert_ne!(a.coords, b.coords);
    }

    #[test]
    fn unstructured_mesh_has_variable_degree() {
        let m = square_with_hole(500, 7);
        let adj = m.adjacency();
        let degrees: Vec<usize> = (0..adj.n()).map(|v| adj.neighbors(v).len()).collect();
        let min = degrees.iter().min().unwrap();
        let max = degrees.iter().max().unwrap();
        assert!(max > min, "degrees uniform: {min}");
    }
}
