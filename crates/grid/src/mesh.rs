//! Mesh containers and derived topology.

/// Vertex-to-vertex adjacency in CSR layout (the "nodal graph" handed to the
/// partitioner, mirroring what Metis consumes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    /// Offsets, length `n + 1`.
    pub xadj: Vec<usize>,
    /// Concatenated sorted neighbour lists (self excluded).
    pub adjncy: Vec<usize>,
}

impl Adjacency {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Neighbours of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Number of (undirected) edges.
    pub fn n_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Builds from a list of cliques (element vertex tuples).
    pub fn from_elements(n_nodes: usize, elements: impl Iterator<Item = Vec<usize>>) -> Self {
        let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
        for elem in elements {
            for (a, &i) in elem.iter().enumerate() {
                for &j in &elem[a + 1..] {
                    nbrs[i].push(j);
                    nbrs[j].push(i);
                }
            }
        }
        let mut xadj = Vec::with_capacity(n_nodes + 1);
        let mut adjncy = Vec::new();
        xadj.push(0);
        for list in &mut nbrs {
            list.sort_unstable();
            list.dedup();
            adjncy.extend_from_slice(list);
            xadj.push(adjncy.len());
        }
        Adjacency { xadj, adjncy }
    }
}

/// A 2-D triangular mesh.
#[derive(Debug, Clone)]
pub struct Mesh2d {
    /// Node coordinates.
    pub coords: Vec<[f64; 2]>,
    /// Triangles as CCW-oriented vertex triples.
    pub triangles: Vec<[usize; 3]>,
}

impl Mesh2d {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of triangles.
    pub fn n_elems(&self) -> usize {
        self.triangles.len()
    }

    /// Signed area of triangle `t` (positive for CCW orientation).
    pub fn signed_area(&self, t: usize) -> f64 {
        let [a, b, c] = self.triangles[t];
        let pa = self.coords[a];
        let pb = self.coords[b];
        let pc = self.coords[c];
        0.5 * ((pb[0] - pa[0]) * (pc[1] - pa[1]) - (pc[0] - pa[0]) * (pb[1] - pa[1]))
    }

    /// Total mesh area.
    pub fn total_area(&self) -> f64 {
        (0..self.n_elems()).map(|t| self.signed_area(t)).sum()
    }

    /// Flags nodes lying on the mesh boundary (edges shared by exactly one
    /// triangle).
    pub fn boundary_nodes(&self) -> Vec<bool> {
        let mut edge_count = std::collections::HashMap::new();
        for tri in &self.triangles {
            for k in 0..3 {
                let a = tri[k];
                let b = tri[(k + 1) % 3];
                let key = (a.min(b), a.max(b));
                *edge_count.entry(key).or_insert(0u32) += 1;
            }
        }
        let mut on_boundary = vec![false; self.n_nodes()];
        for (&(a, b), &cnt) in &edge_count {
            if cnt == 1 {
                on_boundary[a] = true;
                on_boundary[b] = true;
            }
        }
        on_boundary
    }

    /// Vertex adjacency graph (element cliques).
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::from_elements(self.n_nodes(), self.triangles.iter().map(|t| t.to_vec()))
    }

    /// Asserts basic validity: indices in range, positive areas (panics on
    /// violation; meant for tests and debug assertions).
    pub fn check(&self) {
        let n = self.n_nodes();
        for (t, tri) in self.triangles.iter().enumerate() {
            for &v in tri {
                assert!(v < n, "triangle {t} references node {v} >= {n}");
            }
            assert!(
                self.signed_area(t) > 0.0,
                "triangle {t} is degenerate or CW (area {})",
                self.signed_area(t)
            );
        }
    }
}

/// A 3-D tetrahedral mesh.
#[derive(Debug, Clone)]
pub struct Mesh3d {
    /// Node coordinates.
    pub coords: Vec<[f64; 3]>,
    /// Tetrahedra as positively oriented vertex quadruples.
    pub tets: Vec<[usize; 4]>,
}

impl Mesh3d {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of tetrahedra.
    pub fn n_elems(&self) -> usize {
        self.tets.len()
    }

    /// Signed volume of tet `t` (positive for correct orientation).
    pub fn signed_volume(&self, t: usize) -> f64 {
        let [a, b, c, d] = self.tets[t];
        let pa = self.coords[a];
        let pb = self.coords[b];
        let pc = self.coords[c];
        let pd = self.coords[d];
        let u = [pb[0] - pa[0], pb[1] - pa[1], pb[2] - pa[2]];
        let v = [pc[0] - pa[0], pc[1] - pa[1], pc[2] - pa[2]];
        let w = [pd[0] - pa[0], pd[1] - pa[1], pd[2] - pa[2]];
        (u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
            + u[2] * (v[0] * w[1] - v[1] * w[0]))
            / 6.0
    }

    /// Total mesh volume.
    pub fn total_volume(&self) -> f64 {
        (0..self.n_elems()).map(|t| self.signed_volume(t)).sum()
    }

    /// Flags nodes on the boundary (faces shared by exactly one tet).
    pub fn boundary_nodes(&self) -> Vec<bool> {
        let mut face_count = std::collections::HashMap::new();
        for tet in &self.tets {
            const FACES: [[usize; 3]; 4] = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]];
            for f in FACES {
                let mut key = [tet[f[0]], tet[f[1]], tet[f[2]]];
                key.sort_unstable();
                *face_count.entry(key).or_insert(0u32) += 1;
            }
        }
        let mut on_boundary = vec![false; self.n_nodes()];
        for (face, &cnt) in &face_count {
            if cnt == 1 {
                for &v in face {
                    on_boundary[v] = true;
                }
            }
        }
        on_boundary
    }

    /// Vertex adjacency graph (element cliques).
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::from_elements(self.n_nodes(), self.tets.iter().map(|t| t.to_vec()))
    }

    /// Asserts basic validity (tests).
    pub fn check(&self) {
        let n = self.n_nodes();
        for (t, tet) in self.tets.iter().enumerate() {
            for &v in tet {
                assert!(v < n, "tet {t} references node {v} >= {n}");
            }
            assert!(
                self.signed_volume(t) > 0.0,
                "tet {t} degenerate or inverted (volume {})",
                self.signed_volume(t)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Mesh2d {
        // Unit square split along the diagonal.
        Mesh2d {
            coords: vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]],
            triangles: vec![[0, 1, 2], [0, 2, 3]],
        }
    }

    #[test]
    fn area_and_orientation() {
        let m = two_triangles();
        m.check();
        assert!((m.total_area() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn all_nodes_on_boundary_of_square_pair() {
        let m = two_triangles();
        assert_eq!(m.boundary_nodes(), vec![true; 4]);
    }

    #[test]
    fn adjacency_of_two_triangles() {
        let m = two_triangles();
        let adj = m.adjacency();
        assert_eq!(adj.n(), 4);
        assert_eq!(adj.neighbors(0), &[1, 2, 3]);
        assert_eq!(adj.neighbors(1), &[0, 2]);
        assert_eq!(adj.n_edges(), 5);
    }

    #[test]
    fn single_tet_volume_and_boundary() {
        let m = Mesh3d {
            coords: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ],
            tets: vec![[0, 1, 2, 3]],
        };
        m.check();
        assert!((m.total_volume() - 1.0 / 6.0).abs() < 1e-14);
        assert_eq!(m.boundary_nodes(), vec![true; 4]);
        assert_eq!(m.adjacency().n_edges(), 6);
    }
}
