//! The quarter-ring domain of Test Case 6 (paper Fig. 5).
//!
//! A curvilinear structured grid of triangles on
//! `Ω = {(r cos θ, r sin θ) : 1 ≤ r ≤ 2, 0 ≤ θ ≤ π/2}`. The straight edge
//! `Γ₁` lies on the x-axis (θ = 0), the straight edge `Γ₂` on the y-axis
//! (θ = π/2); the paper pins the displacement components `u₁ = 0` on `Γ₁`
//! and `u₂ = 0` on `Γ₂`. The classification helpers below expose both edges.

use crate::mesh::Mesh2d;
use std::f64::consts::FRAC_PI_2;

/// Inner radius of the ring.
pub const R_INNER: f64 = 1.0;
/// Outer radius of the ring.
pub const R_OUTER: f64 = 2.0;

/// Builds the quarter ring with `nr × nt` nodes (radial × angular).
///
/// Node `(ir, it)` has index `it * nr + ir`, radius
/// `1 + ir/(nr−1)` and angle `θ = (π/2)·it/(nt−1)`.
pub fn quarter_ring(nr: usize, nt: usize) -> Mesh2d {
    assert!(nr >= 2 && nt >= 2);
    let mut coords = Vec::with_capacity(nr * nt);
    for it in 0..nt {
        let theta = FRAC_PI_2 * it as f64 / (nt - 1) as f64;
        let (s, c) = theta.sin_cos();
        for ir in 0..nr {
            let r = R_INNER + (R_OUTER - R_INNER) * ir as f64 / (nr - 1) as f64;
            coords.push([r * c, r * s]);
        }
    }
    let mut triangles = Vec::with_capacity(2 * (nr - 1) * (nt - 1));
    for it in 0..nt - 1 {
        for ir in 0..nr - 1 {
            let p00 = it * nr + ir;
            let p10 = p00 + 1;
            let p01 = p00 + nr;
            let p11 = p01 + 1;
            // CCW with increasing theta.
            triangles.push([p00, p10, p11]);
            triangles.push([p00, p11, p01]);
        }
    }
    Mesh2d { coords, triangles }
}

/// True when node `p` lies on `Γ₁` (the θ = 0 edge, y = 0).
pub fn on_gamma1(p: [f64; 2]) -> bool {
    p[1].abs() < 1e-9
}

/// True when node `p` lies on `Γ₂` (the θ = π/2 edge, x = 0).
pub fn on_gamma2(p: [f64; 2]) -> bool {
    p[0].abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_geometry() {
        let m = quarter_ring(5, 9);
        m.check();
        // Area of a quarter annulus: (π/4)(R² − r²) = (π/4)·3.
        let exact = std::f64::consts::PI * 3.0 / 4.0;
        // Polygonal approximation slightly below the exact value.
        assert!((m.total_area() - exact).abs() / exact < 0.02);
        // All radii within bounds.
        for p in &m.coords {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((R_INNER - 1e-12..=R_OUTER + 1e-12).contains(&r));
        }
    }

    #[test]
    fn gamma_edges_have_nr_nodes() {
        let (nr, nt) = (7, 11);
        let m = quarter_ring(nr, nt);
        let g1 = m.coords.iter().filter(|&&p| on_gamma1(p)).count();
        let g2 = m.coords.iter().filter(|&&p| on_gamma2(p)).count();
        assert_eq!(g1, nr);
        assert_eq!(g2, nr);
    }

    #[test]
    fn ring_refines_towards_exact_area() {
        let coarse = quarter_ring(4, 4).total_area();
        let fine = quarter_ring(32, 32).total_area();
        let exact = std::f64::consts::PI * 3.0 / 4.0;
        assert!((fine - exact).abs() < (coarse - exact).abs());
    }
}
