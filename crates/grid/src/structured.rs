//! Uniform structured grids on the unit square and unit cube.
//!
//! Test Cases 1, 2, 4 and 5 of the paper use uniform grids (1001×1001 in 2-D,
//! 101³ in 3-D). The generators below produce the same grids at any
//! resolution, triangulated / tetrahedralized for P1 finite elements.

use crate::mesh::{Mesh2d, Mesh3d};

/// Triangulated uniform grid on the unit square with `nx × ny` **nodes**.
///
/// Each grid cell is split along its lower-left→upper-right diagonal into
/// two CCW triangles. Node `(i, j)` (column `i`, row `j`) has index
/// `j * nx + i` and coordinates `(i/(nx−1), j/(ny−1))`.
pub fn unit_square(nx: usize, ny: usize) -> Mesh2d {
    assert!(nx >= 2 && ny >= 2, "need at least 2 nodes per direction");
    let mut coords = Vec::with_capacity(nx * ny);
    let hx = 1.0 / (nx - 1) as f64;
    let hy = 1.0 / (ny - 1) as f64;
    for j in 0..ny {
        for i in 0..nx {
            coords.push([i as f64 * hx, j as f64 * hy]);
        }
    }
    let mut triangles = Vec::with_capacity(2 * (nx - 1) * (ny - 1));
    for j in 0..ny - 1 {
        for i in 0..nx - 1 {
            let p00 = j * nx + i;
            let p10 = p00 + 1;
            let p01 = p00 + nx;
            let p11 = p01 + 1;
            triangles.push([p00, p10, p11]);
            triangles.push([p00, p11, p01]);
        }
    }
    Mesh2d { coords, triangles }
}

/// Tetrahedralized uniform grid on the unit cube with `nx × ny × nz` nodes.
///
/// Each voxel is split into 6 tetrahedra with the Kuhn (Freudenthal)
/// subdivision — paths from corner `(0,0,0)` to `(1,1,1)` following the six
/// axis orderings — which is conforming across voxel faces.
pub fn unit_cube(nx: usize, ny: usize, nz: usize) -> Mesh3d {
    assert!(nx >= 2 && ny >= 2 && nz >= 2);
    let mut coords = Vec::with_capacity(nx * ny * nz);
    let hx = 1.0 / (nx - 1) as f64;
    let hy = 1.0 / (ny - 1) as f64;
    let hz = 1.0 / (nz - 1) as f64;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                coords.push([i as f64 * hx, j as f64 * hy, k as f64 * hz]);
            }
        }
    }
    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    // The 6 permutations of axis insertion order (x=0, y=1, z=2).
    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let mut tets = Vec::with_capacity(6 * (nx - 1) * (ny - 1) * (nz - 1));
    for k in 0..nz - 1 {
        for j in 0..ny - 1 {
            for i in 0..nx - 1 {
                for perm in PERMS {
                    let mut offs = [0usize; 3]; // current corner offset per axis
                    let mut verts = [idx(i, j, k); 4];
                    for (step, &axis) in perm.iter().enumerate() {
                        offs[axis] = 1;
                        verts[step + 1] = idx(i + offs[0], j + offs[1], k + offs[2]);
                    }
                    tets.push(verts);
                }
            }
        }
    }
    // Fix orientation: Kuhn tets alternate sign depending on the permutation
    // parity; swap two vertices for odd permutations.
    let mesh_tmp = Mesh3d {
        coords: coords.clone(),
        tets: tets.clone(),
    };
    for (t, tet) in tets.iter_mut().enumerate() {
        if mesh_tmp.signed_volume(t) < 0.0 {
            tet.swap(2, 3);
        }
    }
    Mesh3d { coords, tets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_counts_and_area() {
        let m = unit_square(5, 7);
        assert_eq!(m.n_nodes(), 35);
        assert_eq!(m.n_elems(), 2 * 4 * 6);
        m.check();
        assert!((m.total_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn square_boundary_count() {
        let m = unit_square(6, 6);
        let b = m.boundary_nodes();
        let count = b.iter().filter(|&&x| x).count();
        assert_eq!(count, 4 * 6 - 4);
    }

    #[test]
    fn square_interior_node_degree() {
        // With the diagonal split, interior nodes have 6 neighbours.
        let m = unit_square(5, 5);
        let adj = m.adjacency();
        let mid = 2 * 5 + 2;
        assert_eq!(adj.neighbors(mid).len(), 6);
    }

    #[test]
    fn cube_counts_and_volume() {
        let m = unit_cube(4, 3, 5);
        assert_eq!(m.n_nodes(), 60);
        assert_eq!(m.n_elems(), 6 * 3 * 2 * 4);
        m.check();
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cube_boundary_nodes() {
        let m = unit_cube(4, 4, 4);
        let b = m.boundary_nodes();
        let interior = b.iter().filter(|&&x| !x).count();
        assert_eq!(interior, 2 * 2 * 2);
    }

    #[test]
    fn cube_conforming_across_cells() {
        // A conforming mesh has each interior face shared by exactly 2 tets:
        // check via boundary_nodes() internal consistency — every node of a
        // 2-voxel mesh lies on the boundary.
        let m = unit_cube(3, 2, 2);
        assert!(m.boundary_nodes().iter().all(|&x| x));
        // Volume still exact.
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }
}
