//! Uniform mesh refinement.
//!
//! Regular (red) refinement of triangular meshes: every triangle is split
//! into four by connecting edge midpoints. Nested refinement preserves mesh
//! quality exactly (children are similar to the parent), quadruples the
//! element count, and roughly quadruples the node count — the standard way
//! to run a convergence study on an *unstructured* grid like Test Case 3's.

use crate::mesh::Mesh2d;
use std::collections::HashMap;

/// Refines every triangle into four (red refinement).
pub fn refine_uniform(mesh: &Mesh2d) -> Mesh2d {
    let mut coords = mesh.coords.clone();
    let mut midpoint: HashMap<(usize, usize), usize> = HashMap::new();
    let mut mid = |a: usize, b: usize, coords: &mut Vec<[f64; 2]>| -> usize {
        let key = (a.min(b), a.max(b));
        *midpoint.entry(key).or_insert_with(|| {
            let pa = coords[a];
            let pb = coords[b];
            coords.push([0.5 * (pa[0] + pb[0]), 0.5 * (pa[1] + pb[1])]);
            coords.len() - 1
        })
    };
    let mut triangles = Vec::with_capacity(4 * mesh.n_elems());
    for &[a, b, c] in &mesh.triangles {
        let ab = mid(a, b, &mut coords);
        let bc = mid(b, c, &mut coords);
        let ca = mid(c, a, &mut coords);
        triangles.push([a, ab, ca]);
        triangles.push([ab, b, bc]);
        triangles.push([ca, bc, c]);
        triangles.push([ab, bc, ca]);
    }
    Mesh2d { coords, triangles }
}

/// Applies `levels` rounds of uniform refinement.
pub fn refine_times(mesh: &Mesh2d, levels: usize) -> Mesh2d {
    let mut m = mesh.clone();
    for _ in 0..levels {
        m = refine_uniform(&m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::unit_square;

    #[test]
    fn counts_after_refinement() {
        let m = unit_square(3, 3);
        let r = refine_uniform(&m);
        r.check();
        assert_eq!(r.n_elems(), 4 * m.n_elems());
        // V' = V + E (one new node per edge).
        let e = m.adjacency().n_edges();
        assert_eq!(r.n_nodes(), m.n_nodes() + e);
    }

    #[test]
    fn area_preserved() {
        let m = unit_square(4, 5);
        let r = refine_times(&m, 2);
        assert!((r.total_area() - m.total_area()).abs() < 1e-12);
    }

    #[test]
    fn refinement_is_conforming() {
        // A conforming refined mesh of the square still has exactly the
        // perimeter nodes on the boundary.
        let m = unit_square(3, 3);
        let r = refine_uniform(&m);
        let nb = r.boundary_nodes().iter().filter(|&&b| b).count();
        // 5 nodes per side on the refined 5x5-lattice boundary.
        assert_eq!(nb, 16);
    }

    #[test]
    fn refinement_of_unstructured_mesh() {
        let m = crate::delaunay::square_with_hole(300, 3);
        let r = refine_uniform(&m);
        r.check();
        assert!((r.total_area() - m.total_area()).abs() < 1e-9);
        assert_eq!(r.n_elems(), 4 * m.n_elems());
    }
}
