//! Property-based tests for mesh generation.

use parapre_grid::delaunay::Triangulator;
use parapre_grid::ring::quarter_ring;
use parapre_grid::structured::{unit_cube, unit_square};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn structured_square_invariants(nx in 2usize..20, ny in 2usize..20) {
        let m = unit_square(nx, ny);
        m.check();
        prop_assert_eq!(m.n_nodes(), nx * ny);
        prop_assert_eq!(m.n_elems(), 2 * (nx - 1) * (ny - 1));
        prop_assert!((m.total_area() - 1.0).abs() < 1e-12);
        // Boundary count: perimeter nodes.
        let nb = m.boundary_nodes().iter().filter(|&&b| b).count();
        prop_assert_eq!(nb, 2 * nx + 2 * ny - 4);
    }

    #[test]
    fn structured_cube_invariants(nx in 2usize..7, ny in 2usize..7, nz in 2usize..7) {
        let m = unit_cube(nx, ny, nz);
        m.check();
        prop_assert_eq!(m.n_nodes(), nx * ny * nz);
        prop_assert_eq!(m.n_elems(), 6 * (nx - 1) * (ny - 1) * (nz - 1));
        prop_assert!((m.total_volume() - 1.0).abs() < 1e-12);
        // Interior node count.
        let ni = m.boundary_nodes().iter().filter(|&&b| !b).count();
        prop_assert_eq!(ni, (nx - 2) * (ny - 2) * (nz - 2));
    }

    #[test]
    fn ring_mesh_invariants(nr in 2usize..12, nt in 2usize..12) {
        let m = quarter_ring(nr, nt);
        m.check();
        prop_assert_eq!(m.n_nodes(), nr * nt);
        // Area below the exact annulus quarter but close for fine grids.
        let exact = std::f64::consts::PI * 3.0 / 4.0;
        prop_assert!(m.total_area() <= exact + 1e-12);
        prop_assert!(m.total_area() > 0.5 * exact);
    }

    #[test]
    fn delaunay_of_random_cloud_is_valid(seed in any::<u64>(), n in 10usize..80) {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        // Grid-jitter placement avoids exact duplicates.
        let side = (n as f64).sqrt().ceil() as usize;
        let mut pts = Vec::new();
        for k in 0..n {
            let (i, j) = (k % side, k / side);
            pts.push([
                i as f64 + 0.4 * rnd(),
                j as f64 + 0.4 * rnd(),
            ]);
        }
        let m = Triangulator::triangulate(&pts);
        m.check();
        // All points that participate appear in some triangle for interior-
        // rich clouds; at minimum, triangulation is non-empty and area > 0.
        prop_assert!(m.n_elems() >= 1);
        prop_assert!(m.total_area() > 0.0);
        // Hull area bound: triangulated area cannot exceed the bounding box.
        let (mut xmin, mut xmax, mut ymin, mut ymax) =
            (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for p in &pts {
            xmin = xmin.min(p[0]);
            xmax = xmax.max(p[0]);
            ymin = ymin.min(p[1]);
            ymax = ymax.max(p[1]);
        }
        prop_assert!(m.total_area() <= (xmax - xmin) * (ymax - ymin) + 1e-9);
    }

    #[test]
    fn adjacency_is_symmetric_and_loop_free(nx in 2usize..12) {
        let m = unit_square(nx, nx);
        let adj = m.adjacency();
        for v in 0..adj.n() {
            for &w in adj.neighbors(v) {
                prop_assert_ne!(v, w, "self loop");
                prop_assert!(adj.neighbors(w).contains(&v), "asymmetric edge");
            }
        }
    }
}
