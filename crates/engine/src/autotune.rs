//! Fingerprint-keyed autotuning: learn, per matrix, which preconditioner
//! answers fastest, and select it for `"precond":"auto"` jobs.
//!
//! Every finished solve folds an outcome record — preconditioner rung,
//! wall time, iterations, pivot shifts, fallback rungs, convergence — into
//! the [`AutoTuner`], keyed by the matrix's content
//! [`fingerprint`](parapre_sparse::Csr::fingerprint). Non-auto jobs feed
//! the tuner passively (one hash-map update per job, no decision cost);
//! `"precond":"auto"` jobs consult it:
//!
//! * **explore** — while any candidate rung has fewer than
//!   [`AutoTuner::explore_trials`] converged samples for this fingerprint,
//!   pick the least-tried one, so cold matrices sweep the candidate set;
//! * **exploit** — otherwise pick the rung with the lowest mean solve
//!   time among rungs that converged, tie-broken by iteration count.
//!
//! Records survive restarts through [`AutoTuner::save`] /
//! [`AutoTuner::load`] (flat JSONL, one record per line), so a redeployed
//! `parapre-netd` starts warm. The same numbers are also visible live in
//! the `parapre_solve_us{fp,precond}` keyed histograms from the metrics
//! layer; the tuner keeps its own compact sums so selection stays O(rungs)
//! and restart-persistent.

use parapre_core::PrecondKind;
use parapre_trace::flatjson::{self, JsonValue};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Mutex;

/// The candidate rungs an `"auto"` job sweeps, cheapest-to-build first so
/// exploration makes forward progress even on hostile matrices.
///
/// `SchurML` is in the arm set but conditionally: its strict build policy
/// refuses matrices whose coarse factorization needs shifts, and a refused
/// build records a fallback rung. [`AutoTuner::select`] drops the arm for
/// any fingerprint whose `SchurML` record shows `fallbacks > 0`, so a
/// matrix that cannot host the rung falls out of the sweep instead of
/// poisoning the tuner state with repeat build failures.
pub const AUTO_CANDIDATES: [PrecondKind; 5] = [
    PrecondKind::Block1,
    PrecondKind::Block2,
    PrecondKind::Schur1,
    PrecondKind::Schur2,
    PrecondKind::schurml_default(),
];

/// Accumulated outcomes of one (fingerprint, preconditioner) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TuneRecord {
    /// Solves recorded.
    pub n: u64,
    /// Of which converged.
    pub converged: u64,
    /// Total solve wall time (µs) over converged solves.
    pub solve_us: u64,
    /// Total outer iterations over converged solves.
    pub iterations: u64,
    /// Diagonal-shift retries seen (any outcome).
    pub pivot_shifts: u64,
    /// Fallback-ladder rungs descended (any outcome).
    pub fallbacks: u64,
}

impl TuneRecord {
    /// Mean solve time (µs) over converged solves; `f64::INFINITY` with no
    /// converged sample, so unproven rungs never win exploitation.
    pub fn mean_solve_us(&self) -> f64 {
        if self.converged == 0 {
            f64::INFINITY
        } else {
            self.solve_us as f64 / self.converged as f64
        }
    }

    /// Mean outer iterations over converged solves (`INFINITY` when none).
    pub fn mean_iterations(&self) -> f64 {
        if self.converged == 0 {
            f64::INFINITY
        } else {
            self.iterations as f64 / self.converged as f64
        }
    }
}

/// One solve outcome, as fed to [`AutoTuner::record`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneSample {
    /// Whether the solve converged.
    pub converged: bool,
    /// Solve wall time (µs); only folded in when converged.
    pub solve_us: u64,
    /// Outer iterations; only folded in when converged.
    pub iterations: u64,
    /// Diagonal-shift retries seen.
    pub pivot_shifts: u64,
    /// Fallback-ladder rungs descended.
    pub fallbacks: u64,
}

/// Why the tuner picked the rung it picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneDecision {
    /// Gathering data: the rung had the fewest samples for this matrix.
    Explore,
    /// Best known rung by mean converged solve time.
    Exploit,
}

/// Counter snapshot for the stats protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Outcome records folded in.
    pub records: u64,
    /// Auto selections answered by exploration.
    pub explore: u64,
    /// Auto selections answered by exploitation.
    pub exploit: u64,
    /// Distinct fingerprints with at least one record.
    pub fingerprints: usize,
}

/// Plausibility ceiling on a state-file record's *total* converged solve
/// time: 10^13 µs ≈ 115 days. Anything above is a corrupt or hostile line
/// — folding it in would make the rung's mean time garbage forever.
pub const MAX_STATE_SOLVE_US: u64 = 10_000_000_000_000;

/// Warnings kept per [`AutoTuner::load`]; the rejected count is exact even
/// when a hostile file would otherwise produce megabytes of them.
const MAX_LOAD_WARNINGS: usize = 16;

/// What one [`AutoTuner::load`] did: lines folded in, lines refused, and
/// the first few per-line reasons (capped at 16).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TuneLoad {
    /// Lines folded into the store.
    pub absorbed: usize,
    /// Lines refused by validation.
    pub rejected: usize,
    /// `"line <k>: <why>"` for the first rejected lines.
    pub warnings: Vec<String>,
}

#[derive(Default)]
struct Inner {
    by_fp: HashMap<u64, HashMap<PrecondKind, TuneRecord>>,
    records: u64,
    explore: u64,
    exploit: u64,
}

/// The per-fingerprint outcome store and `"auto"` selection policy.
///
/// Thread-safe; one lives inside every
/// [`SolveService`](crate::SolveService).
pub struct AutoTuner {
    inner: Mutex<Inner>,
    /// Converged samples each candidate needs before exploitation starts
    /// for a fingerprint.
    pub explore_trials: u64,
}

impl Default for AutoTuner {
    fn default() -> Self {
        AutoTuner::new(1)
    }
}

impl AutoTuner {
    /// An empty tuner requiring `explore_trials` converged samples per
    /// candidate rung before it exploits (min 1).
    pub fn new(explore_trials: u64) -> AutoTuner {
        AutoTuner {
            inner: Mutex::new(Inner::default()),
            explore_trials: explore_trials.max(1),
        }
    }

    /// Folds one solve outcome into the store.
    pub fn record(&self, fingerprint: u64, precond: PrecondKind, sample: TuneSample) {
        let mut inner = self.inner.lock().expect("tuner lock");
        let rec = inner
            .by_fp
            .entry(fingerprint)
            .or_default()
            .entry(precond)
            .or_default();
        rec.n += 1;
        if sample.converged {
            rec.converged += 1;
            rec.solve_us += sample.solve_us;
            rec.iterations += sample.iterations;
        }
        rec.pivot_shifts += sample.pivot_shifts;
        rec.fallbacks += sample.fallbacks;
        inner.records += 1;
        parapre_metrics::inc(parapre_metrics::names::TUNER_RECORDS_TOTAL, 1);
    }

    /// Picks the preconditioner for an `"auto"` job on `fingerprint`.
    pub fn select(&self, fingerprint: u64) -> (PrecondKind, TuneDecision) {
        let mut inner = self.inner.lock().expect("tuner lock");
        let recs = inner.by_fp.get(&fingerprint).cloned().unwrap_or_default();
        // Conditional arms first: a `SchurML` record carrying fallbacks
        // means the strict build refused this matrix and the ladder paid a
        // rung — retrying the arm would keep failing the same way, so it
        // falls out of the sweep for this fingerprint.
        let armed = |k: PrecondKind| {
            !matches!(k, PrecondKind::SchurML { .. })
                || recs.get(&k).is_none_or(|r| r.fallbacks == 0)
        };
        // Explore: any candidate below the trial floor? Take the least
        // tried (first in AUTO_CANDIDATES order on ties, so cold matrices
        // start on the cheapest build).
        let undertried = AUTO_CANDIDATES
            .iter()
            .filter(|&&k| armed(k))
            .map(|&k| (k, recs.get(&k).map_or(0, |r| r.n)))
            .filter(|&(_, n)| n < self.explore_trials)
            .min_by_key(|&(_, n)| n);
        let picked = if let Some((k, _)) = undertried {
            inner.explore += 1;
            parapre_metrics::inc(parapre_metrics::names::TUNER_EXPLORE_TOTAL, 1);
            (k, TuneDecision::Explore)
        } else {
            let best = AUTO_CANDIDATES
                .iter()
                .filter(|&&k| armed(k))
                .map(|&k| {
                    let r = recs.get(&k).copied().unwrap_or_default();
                    (k, r.mean_solve_us(), r.mean_iterations())
                })
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
                })
                .map(|(k, _, _)| k)
                // No candidate ever converged: fall through to the paper's
                // workhorse and let the fallback ladder keep it honest.
                .unwrap_or(PrecondKind::Schur1);
            inner.exploit += 1;
            parapre_metrics::inc(parapre_metrics::names::TUNER_EXPLOIT_TOTAL, 1);
            (best, TuneDecision::Exploit)
        };
        picked
    }

    /// The record of one (fingerprint, rung) pair, if any.
    pub fn get(&self, fingerprint: u64, precond: PrecondKind) -> Option<TuneRecord> {
        self.inner
            .lock()
            .expect("tuner lock")
            .by_fp
            .get(&fingerprint)
            .and_then(|m| m.get(&precond))
            .copied()
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> TunerStats {
        let inner = self.inner.lock().expect("tuner lock");
        TunerStats {
            records: inner.records,
            explore: inner.explore,
            exploit: inner.exploit,
            fingerprints: inner.by_fp.len(),
        }
    }

    /// Serializes every record as flat JSONL (one line per
    /// (fingerprint, rung); stable fingerprint-then-rung order).
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("tuner lock");
        let mut fps: Vec<_> = inner.by_fp.iter().collect();
        fps.sort_by_key(|(fp, _)| **fp);
        let mut out = String::new();
        for (fp, recs) in fps {
            let mut rungs: Vec<_> = recs.iter().collect();
            rungs.sort_by_key(|(k, _)| k.key());
            for (kind, r) in rungs {
                out.push_str(&format!(
                    "{{\"fp\":\"{fp:016x}\",\"precond\":\"{}\",\"n\":{},\"converged\":{},\
                     \"solve_us\":{},\"iterations\":{},\"pivot_shifts\":{},\"fallbacks\":{}}}\n",
                    kind.key(),
                    r.n,
                    r.converged,
                    r.solve_us,
                    r.iterations,
                    r.pivot_shifts,
                    r.fallbacks,
                ));
            }
        }
        out
    }

    /// Folds one serialized record line back in (inverse of
    /// [`AutoTuner::to_jsonl`] per line).
    ///
    /// A state file is attacker-adjacent input (it survives restarts and
    /// is trivially hand-editable), so a line only lands if it is fully
    /// well-formed: every numeric field a non-negative integer (`NaN`,
    /// negatives, and fractions are rejected, not truncated),
    /// `converged <= n`, `solve_us` under [`MAX_STATE_SOLVE_US`], and the
    /// rung one of the known names. A rejected line returns the reason and
    /// changes nothing — one poisoned record must never skew `select()`.
    pub fn absorb_jsonl_line(&self, line: &str) -> Result<(), String> {
        let fields =
            flatjson::parse_flat_object(line).map_err(|e| format!("not a flat object: {e}"))?;
        let fp = fields
            .get("fp")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
            .ok_or("missing or non-hex \"fp\"")?;
        let kind_str = fields
            .get("precond")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"precond\"")?;
        let kind =
            PrecondKind::parse(kind_str).ok_or_else(|| format!("unknown precond {kind_str:?}"))?;
        // Strict counter read: absent is 0, present must be an exact
        // non-negative integer (as_u64 alone would truncate 1.5 to 1 and
        // wave NaN through as absent).
        let get_counter = |k: &str| -> Result<u64, String> {
            match fields.get(k) {
                None => Ok(0),
                Some(v) => {
                    let f = v
                        .as_f64()
                        .ok_or_else(|| format!("\"{k}\" is not a number"))?;
                    if !f.is_finite() || f < 0.0 || f.fract() != 0.0 || f > u64::MAX as f64 {
                        return Err(format!("\"{k}\" is not a non-negative integer ({f})"));
                    }
                    Ok(f as u64)
                }
            }
        };
        let n = get_counter("n")?;
        let converged = get_counter("converged")?;
        let solve_us = get_counter("solve_us")?;
        let iterations = get_counter("iterations")?;
        let pivot_shifts = get_counter("pivot_shifts")?;
        let fallbacks = get_counter("fallbacks")?;
        if converged > n {
            return Err(format!("converged ({converged}) exceeds n ({n})"));
        }
        if solve_us > MAX_STATE_SOLVE_US {
            return Err(format!(
                "solve_us ({solve_us}) exceeds the plausibility cap ({MAX_STATE_SOLVE_US})"
            ));
        }
        let mut inner = self.inner.lock().expect("tuner lock");
        let rec = inner.by_fp.entry(fp).or_default().entry(kind).or_default();
        rec.n += n;
        rec.converged += converged;
        rec.solve_us += solve_us;
        rec.iterations += iterations;
        rec.pivot_shifts += pivot_shifts;
        rec.fallbacks += fallbacks;
        inner.records += 1;
        Ok(())
    }

    /// Writes the store to `path` (atomic enough for a single writer:
    /// temp file + rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            f.write_all(self.to_jsonl().as_bytes())?;
            f.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads (merges) a state file previously written by
    /// [`AutoTuner::save`]. A missing file is fine (cold start); malformed
    /// or implausible lines are rejected individually with structured
    /// warnings rather than poisoning the store or aborting the load.
    pub fn load(&self, path: &Path) -> std::io::Result<TuneLoad> {
        let f = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(TuneLoad::default()),
            Err(e) => return Err(e),
        };
        let mut out = TuneLoad::default();
        for (i, line) in std::io::BufReader::new(f).lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match self.absorb_jsonl_line(&line) {
                Ok(()) => out.absorbed += 1,
                Err(why) => {
                    out.rejected += 1;
                    if out.warnings.len() < MAX_LOAD_WARNINGS {
                        out.warnings.push(format!("line {}: {why}", i + 1));
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_then_exploits_best_mean() {
        let t = AutoTuner::new(1);
        let fp = 0xabcdu64;
        // Cold: sweeps the candidate list in order.
        for &want in AUTO_CANDIDATES.iter() {
            let (k, d) = t.select(fp);
            assert_eq!((k, d), (want, TuneDecision::Explore));
            let us = if want == PrecondKind::Schur2 {
                100
            } else {
                900
            };
            t.record(
                fp,
                want,
                TuneSample {
                    converged: true,
                    solve_us: us,
                    iterations: 10,
                    ..TuneSample::default()
                },
            );
        }
        // Warm: picks the fastest mean.
        let (k, d) = t.select(fp);
        assert_eq!((k, d), (PrecondKind::Schur2, TuneDecision::Exploit));
    }

    #[test]
    fn unconverged_rungs_never_win() {
        let t = AutoTuner::new(1);
        let fp = 7u64;
        for &k in AUTO_CANDIDATES.iter() {
            // Block1 is fast but diverges; Schur1 converges slowly.
            let conv = k == PrecondKind::Schur1;
            t.record(
                fp,
                k,
                TuneSample {
                    converged: conv,
                    solve_us: 50,
                    iterations: 5,
                    ..TuneSample::default()
                },
            );
        }
        assert_eq!(t.select(fp).0, PrecondKind::Schur1);
    }

    #[test]
    fn schurml_arm_falls_out_after_build_fallback() {
        let t = AutoTuner::new(1);
        let fp = 0x5c4au64;
        let schurml = PrecondKind::schurml_default();
        // The SchurML build was refused: the ladder descended a rung. The
        // converged result belongs to the substitute, not the arm.
        t.record(
            fp,
            schurml,
            TuneSample {
                converged: true,
                solve_us: 1, // would win exploitation if the arm stayed live
                iterations: 1,
                fallbacks: 1,
                ..TuneSample::default()
            },
        );
        // Exploration sweeps the remaining arms only…
        for _ in 0..AUTO_CANDIDATES.len() - 1 {
            let (k, d) = t.select(fp);
            assert_eq!(d, TuneDecision::Explore);
            assert_ne!(k, schurml, "disarmed rung must not be explored");
            t.record(
                fp,
                k,
                TuneSample {
                    converged: true,
                    solve_us: 500,
                    iterations: 10,
                    ..TuneSample::default()
                },
            );
        }
        // …and exploitation never resurrects the disarmed rung either.
        let (k, d) = t.select(fp);
        assert_eq!(d, TuneDecision::Exploit);
        assert_ne!(k, schurml, "disarmed rung must not win exploitation");
    }

    #[test]
    fn schurml_arm_stays_live_on_clean_builds() {
        let t = AutoTuner::new(1);
        let fp = 0x11u64;
        let schurml = PrecondKind::schurml_default();
        for &k in AUTO_CANDIDATES.iter() {
            let us = if k == schurml { 10 } else { 800 };
            t.record(
                fp,
                k,
                TuneSample {
                    converged: true,
                    solve_us: us,
                    iterations: 5,
                    ..TuneSample::default()
                },
            );
        }
        assert_eq!(t.select(fp), (schurml, TuneDecision::Exploit));
    }

    #[test]
    fn jsonl_round_trip_preserves_records() {
        let t = AutoTuner::new(2);
        t.record(
            1,
            PrecondKind::Schur1,
            TuneSample {
                converged: true,
                solve_us: 123,
                iterations: 7,
                pivot_shifts: 1,
                fallbacks: 0,
            },
        );
        t.record(
            1,
            PrecondKind::Block2,
            TuneSample {
                pivot_shifts: 2,
                fallbacks: 3,
                ..TuneSample::default()
            },
        );
        t.record(
            2,
            PrecondKind::Jacobi,
            TuneSample {
                converged: true,
                solve_us: 9,
                iterations: 1,
                ..TuneSample::default()
            },
        );
        let text = t.to_jsonl();
        let u = AutoTuner::new(2);
        for line in text.lines() {
            u.absorb_jsonl_line(line).expect("own output round-trips");
        }
        for (fp, k) in [
            (1, PrecondKind::Schur1),
            (1, PrecondKind::Block2),
            (2, PrecondKind::Jacobi),
        ] {
            assert_eq!(t.get(fp, k), u.get(fp, k), "fp={fp} {k:?}");
        }
        // Malformed lines are rejected without changing the store.
        assert!(u.absorb_jsonl_line("not json").is_err());
        assert!(u
            .absorb_jsonl_line("{\"fp\":\"zz\",\"precond\":\"schur1\"}")
            .is_err());
        assert_eq!(u.stats().fingerprints, 2);
    }

    #[test]
    fn hostile_state_lines_are_rejected_and_do_not_poison_select() {
        let t = AutoTuner::new(1);
        // Each line is hostile in a different way; none may land.
        let hostile = [
            // Unknown rung name.
            "{\"fp\":\"1\",\"precond\":\"turbo9000\",\"n\":1,\"converged\":1,\"solve_us\":1}",
            // Negative counter.
            "{\"fp\":\"1\",\"precond\":\"schur1\",\"n\":-5}",
            // Fractional counter (as_u64 would silently truncate it).
            "{\"fp\":\"1\",\"precond\":\"schur1\",\"n\":2,\"converged\":1.5}",
            // NaN-via-null counter.
            "{\"fp\":\"1\",\"precond\":\"schur1\",\"n\":1,\"solve_us\":null}",
            // More conversions than solves.
            "{\"fp\":\"1\",\"precond\":\"schur1\",\"n\":1,\"converged\":2}",
            // Absurd total solve time (would rig the mean forever).
            "{\"fp\":\"1\",\"precond\":\"schur1\",\"n\":1,\"converged\":1,\
             \"solve_us\":99000000000000}",
            // String where a counter belongs.
            "{\"fp\":\"1\",\"precond\":\"schur1\",\"n\":\"lots\"}",
        ];
        for line in hostile {
            assert!(t.absorb_jsonl_line(line).is_err(), "must reject: {line}");
        }
        assert_eq!(t.stats().records, 0, "no hostile line may land");
        // One honest record, then a hostile file load: selection still
        // reflects only the honest data.
        t.record(
            1,
            PrecondKind::Schur2,
            TuneSample {
                converged: true,
                solve_us: 10,
                iterations: 2,
                ..TuneSample::default()
            },
        );
        let dir = std::env::temp_dir().join("parapre-tuner-hostile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.jsonl");
        std::fs::write(&path, hostile.join("\n")).unwrap();
        let loaded = t.load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.absorbed, 0);
        assert_eq!(loaded.rejected, hostile.len());
        assert_eq!(loaded.warnings.len(), hostile.len());
        assert!(loaded.warnings[0].starts_with("line 1:"));
        assert_eq!(t.get(1, PrecondKind::Schur2).unwrap().solve_us, 10);
    }

    #[test]
    fn save_load_round_trip_reports_counts() {
        let t = AutoTuner::new(1);
        t.record(
            42,
            PrecondKind::Block1,
            TuneSample {
                converged: true,
                solve_us: 77,
                iterations: 3,
                ..TuneSample::default()
            },
        );
        let dir = std::env::temp_dir().join("parapre-tuner-roundtrip-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.jsonl");
        t.save(&path).unwrap();
        let u = AutoTuner::new(1);
        let loaded = u.load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.absorbed, 1);
        assert_eq!(loaded.rejected, 0);
        assert!(loaded.warnings.is_empty());
        assert_eq!(
            u.get(42, PrecondKind::Block1),
            t.get(42, PrecondKind::Block1)
        );
        // Missing file: clean cold start.
        let cold = u.load(&dir.join("nope.jsonl")).unwrap();
        assert_eq!(cold, TuneLoad::default());
    }
}
