//! Cached solver sessions: partition + distribute + factor **once**, then
//! solve any number of right-hand sides against the frozen state.
//!
//! The paper's workloads are repeated solves (TC4 is one implicit step of a
//! time-dependent problem), yet the experiment runner rebuilds everything
//! per solve. A [`SolverSession`] performs the expensive setup pipeline one
//! time and keeps the per-rank state — each rank's [`DistMatrix`] and
//! factored preconditioner — alive across [`SolverSession::solve`] calls.
//! Every solve spins up a fresh universe of `P` threads that *borrow* the
//! cached rank states (this is why [`parapre_dist::DistPrecond`] requires
//! `Send + Sync`), so a session holds no threads while idle and concurrent
//! solves on one session never contend.

use crate::EngineError;
use parapre_core::{
    build_dist_precond, build_dist_precond_with_fallback, partition_case_with,
    try_build_dist_precond, AssembledCase, PartitionScheme, PrecondKind, PrecondParams,
};
use parapre_dist::{
    gather_vector, scatter_vector, tags, CheckpointCtx, DistGmres, DistGmresConfig, DistMatrix,
    DistOp, DistPrecond,
};
use parapre_grid::Adjacency;
use parapre_mpisim::{FaultHook, MachineModel, RankFailure, Universe};
use parapre_partition::partition_graph;
use parapre_resilience::elastic::{MigrationPlan, RankDisposition};
use parapre_sparse::Csr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything that determines a session's frozen state (and therefore its
/// cache identity, together with the matrix fingerprint).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Which preconditioner to factor.
    pub precond: PrecondKind,
    /// Number of ranks `P`.
    pub n_ranks: usize,
    /// Partitioning scheme (for case-built sessions; matrix-built sessions
    /// always use general graph partitioning).
    pub scheme: PartitionScheme,
    /// Partitioner RNG seed.
    pub partition_seed: u64,
    /// Outer FGMRES parameters.
    pub gmres: DistGmresConfig,
    /// Preconditioner tuning knobs.
    pub params: PrecondParams,
    /// Deadlock tripwire for every universe this session launches.
    pub recv_timeout: Duration,
    /// Walk the preconditioner fallback ladder on factorization failure
    /// (`Schur 2 → Schur 1 → Block 2 → Block 1 → Jacobi`) instead of
    /// failing the build. All factorizations also go through the
    /// diagonal-shift retry ladder. `false` reproduces the strict
    /// fail-fast build.
    pub fallback: bool,
    /// In-rank thread budget for data-parallel kernels (`None` = the
    /// default share `⌊cores / n_ranks⌋`, or the `PARAPRE_THREADS`
    /// environment override). Results are bitwise identical at any
    /// budget; the knob only trades wall-clock for cores.
    pub threads_per_rank: Option<usize>,
    /// Topology digest of a *migrated* session's bespoke owner map
    /// (`None` for sessions whose partition is derived from
    /// `scheme + partition_seed`). Part of the cache key: a migrated
    /// topology must never be served from (or shadow) an entry keyed for
    /// the seed-derived partition, even at the same `P`.
    pub partition_tag: Option<u64>,
}

impl SessionConfig {
    /// Paper defaults (FGMRES(20), 1e-6 reduction, Linux-cluster partition
    /// seed) for a preconditioner/rank-count pair.
    pub fn paper(precond: PrecondKind, n_ranks: usize) -> Self {
        SessionConfig {
            precond,
            n_ranks,
            scheme: PartitionScheme::General,
            partition_seed: MachineModel::linux_cluster().partition_seed,
            gmres: DistGmresConfig {
                restart: 20,
                max_iters: 600,
                rel_tol: 1e-6,
                ..Default::default()
            },
            params: PrecondParams::default(),
            recv_timeout: Duration::from_secs(60),
            fallback: true,
            threads_per_rank: None,
            partition_tag: None,
        }
    }

    /// Canonical string of every solver-relevant knob — the non-matrix part
    /// of the session cache key. Floats are rendered with full round-trip
    /// precision (`{:?}`), so configs differing in any bit key differently.
    pub fn config_string(&self) -> String {
        // `threads_per_rank` is deliberately absent: kernels are bitwise
        // identical at any budget, so thread counts must not fragment the
        // cache key.
        let topo = match self.partition_tag {
            Some(tag) => format!("|topo{tag:016x}"),
            None => String::new(),
        };
        format!(
            "{}|{}|P{}|seed{}|{:?}|{:?}|fb{}{}",
            self.precond.cache_key(),
            self.scheme.key(),
            self.n_ranks,
            self.partition_seed,
            self.gmres,
            self.params,
            self.fallback,
            topo
        )
    }
}

/// One rank's frozen setup product: its rows of the matrix and its factored
/// preconditioner. Shared read-only (`Sync`) by every subsequent solve.
/// Both halves sit behind `Arc` so a topology migration can share the
/// states of unchanged subdomains with the successor session instead of
/// re-factoring them.
struct RankState {
    dm: Arc<DistMatrix>,
    precond: Arc<dyn DistPrecond>,
    /// Ladder rung the preconditioner was actually built on (identical on
    /// every rank; equals the configured kind with `fallback: false`).
    kind_used: PrecondKind,
    /// Ladder rungs descended below the configured kind (rank-identical).
    fallbacks: usize,
    /// Diagonal-shift retries this rank's factorization spent.
    pivot_shifts: usize,
}

/// A solver session: setup performed once, solves served on demand.
pub struct SolverSession {
    cfg: SessionConfig,
    n_global: usize,
    fingerprint: u64,
    setup_seconds: f64,
    ranks: Vec<RankState>,
    /// The distributed global matrix and owner map, retained so the
    /// resilience layer can build degraded (reduced) systems and verify
    /// full-system residuals without re-partitioning.
    a_global: Csr,
    owner: Vec<u32>,
    /// Initial guess carried across a topology migration (global
    /// indexing, which repartitioning preserves). Used by solves that do
    /// not supply their own guess; `None` for freshly built sessions.
    warm_start: Option<Vec<f64>>,
    /// Most recent solve's per-rank load attribution — the rebalance
    /// policy's input. Interior mutability because solves take `&self`.
    last_load: std::sync::Mutex<Option<parapre_metrics::LoadReport>>,
}

/// The outcome of one [`SolverSession::solve`].
#[derive(Debug, Clone)]
pub struct SessionSolveReport {
    /// The assembled global solution.
    pub x: Vec<f64>,
    /// Outer FGMRES iterations.
    pub iterations: usize,
    /// Whether the relative-residual target was met.
    pub converged: bool,
    /// The solver's recursive residual estimate `‖r‖/‖r₀‖`.
    pub final_relres: f64,
    /// The *true* residual `‖b − Ax‖/‖b‖`, recomputed from scratch after
    /// the solve (catches any drift in the recursive estimate).
    pub true_relres: f64,
    /// Wall time of this solve (universe launch to join).
    pub solve_seconds: f64,
    /// Typed breakdown when the solver stopped for a numerical reason
    /// (`None` on clean convergence or a plain iteration-budget exit).
    pub breakdown: Option<parapre_dist::SolveBreakdown>,
    /// Per-rank busy/comm-wait attribution of this solve. Comm-wait
    /// seconds are only populated while the live metrics layer is
    /// enabled; busy seconds and traffic counts are always measured.
    pub load: parapre_metrics::LoadReport,
}

/// Options of one batched multi-RHS solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Seed each right-hand side's solve with the previous one's solution
    /// (useful when the batch is a time-like sequence; off, every RHS
    /// starts from the zero vector / the supplied guess).
    pub warm_start: bool,
}

/// The outcome of one [`SolverSession::solve_batch`]: per-RHS reports plus
/// the batch wall time (one universe launch amortized over all of them).
#[derive(Debug, Clone)]
pub struct BatchSolveReport {
    /// One report per right-hand side, in submission order.
    pub reports: Vec<SessionSolveReport>,
    /// Wall time of the whole batch (universe launch to join).
    pub batch_seconds: f64,
}

impl BatchSolveReport {
    /// Whether every RHS met the residual target.
    pub fn all_converged(&self) -> bool {
        self.reports.iter().all(|r| r.converged)
    }

    /// Total outer iterations across the batch.
    pub fn total_iterations(&self) -> usize {
        self.reports.iter().map(|r| r.iterations).sum()
    }
}

impl SolverSession {
    /// Builds a session from a global matrix and a per-unknown owner map:
    /// distributes rows and factors the preconditioner on every rank, once.
    pub fn build(
        a: &Csr,
        owner: &[u32],
        cfg: &SessionConfig,
    ) -> Result<SolverSession, EngineError> {
        assert_eq!(a.n_rows(), a.n_cols(), "square systems only");
        assert_eq!(owner.len(), a.n_rows(), "one owner per unknown");
        let p = cfg.n_ranks;
        let fingerprint = a.fingerprint();
        let t0 = Instant::now();
        let cfg_ref = &cfg;
        let outs = Universe::try_run_with_threads(
            p,
            cfg.recv_timeout,
            None,
            cfg.threads_per_rank,
            move |comm| {
                let _setup = parapre_trace::span(parapre_trace::phase::SETUP);
                let dm = DistMatrix::from_global(a, owner, comm.rank(), p);
                if cfg_ref.fallback {
                    let built = build_dist_precond_with_fallback(
                        cfg_ref.precond,
                        &dm,
                        comm,
                        a,
                        &cfg_ref.params,
                    );
                    RankState {
                        dm: Arc::new(dm),
                        precond: Arc::from(built.precond),
                        kind_used: built.kind_used,
                        fallbacks: built.fallbacks,
                        pivot_shifts: built.pivot_shifts,
                    }
                } else {
                    let precond =
                        build_dist_precond(cfg_ref.precond, &dm, comm, a, &cfg_ref.params);
                    RankState {
                        dm: Arc::new(dm),
                        precond: Arc::from(precond),
                        kind_used: cfg_ref.precond,
                        fallbacks: 0,
                        pivot_shifts: 0,
                    }
                }
            },
        );
        let mut ranks = Vec::with_capacity(p);
        let mut failures = Vec::new();
        for out in outs {
            match out {
                Ok(st) => ranks.push(st),
                Err(f) => failures.push(f.to_string()),
            }
        }
        if !failures.is_empty() {
            return Err(EngineError::Setup(failures.join("; ")));
        }
        Ok(SolverSession {
            cfg: cfg.clone(),
            n_global: a.n_rows(),
            fingerprint,
            setup_seconds: t0.elapsed().as_secs_f64(),
            ranks,
            a_global: a.clone(),
            owner: owner.to_vec(),
            warm_start: None,
            last_load: std::sync::Mutex::new(None),
        })
    }

    /// Builds a session for an assembled test case (partitions the node
    /// graph under the configured scheme, then expands to dof owners).
    pub fn from_case(
        case: &AssembledCase,
        cfg: &SessionConfig,
    ) -> Result<SolverSession, EngineError> {
        let node_part = partition_case_with(case, cfg.scheme, cfg.n_ranks, cfg.partition_seed);
        let owner = case.dof_owner(&node_part.owner);
        Self::build(&case.sys.a, &owner, cfg)
    }

    /// Builds a session straight from a general square matrix (the Matrix
    /// Market path): the sparsity pattern is symmetrized for the layout and
    /// the rows are partitioned with the general graph scheme.
    pub fn from_matrix(a: &Csr, cfg: &SessionConfig) -> Result<SolverSession, EngineError> {
        let (a_sym, owner) = partition_matrix(a, cfg.n_ranks, cfg.partition_seed);
        Self::build(&a_sym, &owner, cfg)
    }

    /// Solves `A x = b` against the cached factors (zero initial guess).
    pub fn solve(&self, b: &[f64]) -> Result<SessionSolveReport, EngineError> {
        self.solve_opts(b, None, false).map(|(rep, _)| rep)
    }

    /// [`SolverSession::solve`] with an explicit initial guess (the paper
    /// seeds TC4 solves with the previous time step's state).
    pub fn solve_with_guess(
        &self,
        b: &[f64],
        x0: &[f64],
    ) -> Result<SessionSolveReport, EngineError> {
        self.solve_opts(b, Some(x0), false).map(|(rep, _)| rep)
    }

    /// Solves `A x = b_j` for every right-hand side in `rhss` inside **one**
    /// universe launch: the factorization, partition, comm plan, scatter
    /// tables, and the `P` rank threads are all shared across the batch, so
    /// the per-solve overhead (thread spawn + join, plan setup) is paid
    /// once instead of `k` times. RHS are solved in order (pipelined
    /// per-RHS); with [`BatchOptions::warm_start`] each solve is seeded
    /// with the previous solution.
    pub fn solve_batch(
        &self,
        rhss: &[Vec<f64>],
        x0: Option<&[f64]>,
        opts: BatchOptions,
    ) -> Result<BatchSolveReport, EngineError> {
        assert!(!rhss.is_empty(), "batch needs at least one rhs");
        for b in rhss {
            assert_eq!(b.len(), self.n_global, "rhs length");
        }
        if let Some(x0) = x0 {
            assert_eq!(x0.len(), self.n_global, "guess length");
        }
        // A migrated session's carried iterate stands in for a missing guess.
        let x0 = x0.or(self.warm_start.as_deref());
        struct RhsOut {
            iterations: usize,
            converged: bool,
            final_relres: f64,
            breakdown: Option<parapre_dist::SolveBreakdown>,
            rnorm: f64,
            bnorm: f64,
            x_global: Option<Vec<f64>>,
            busy_s: f64,
            comm: parapre_mpisim::CommStats,
            solve_s: f64,
        }
        let p = self.cfg.n_ranks;
        let t0 = Instant::now();
        let outs = Universe::try_run_with_threads(
            p,
            self.cfg.recv_timeout,
            None,
            self.cfg.threads_per_rank,
            |comm| {
                let st = &self.ranks[comm.rank()];
                let n_owned = st.dm.layout.n_owned();
                let mut x = match x0 {
                    Some(g) => scatter_vector(&st.dm.layout, g),
                    None => vec![0.0; n_owned],
                };
                let mut per_rhs = Vec::with_capacity(rhss.len());
                let mut comm_before = comm.stats();
                for b in rhss {
                    let rhs_t0 = Instant::now();
                    let b_loc = scatter_vector(&st.dm.layout, b);
                    if !opts.warm_start {
                        x = match x0 {
                            Some(g) => scatter_vector(&st.dm.layout, g),
                            None => vec![0.0; n_owned],
                        };
                    }
                    let rep = DistGmres::new(self.cfg.gmres).solve(
                        comm,
                        &st.dm,
                        &st.precond,
                        &b_loc,
                        &mut x,
                    );
                    let mut ax = vec![0.0; n_owned];
                    DistOp::apply(&st.dm, comm, &x, &mut ax);
                    let r: Vec<f64> = b_loc.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
                    let rnorm = st.dm.layout.norm2(comm, &r);
                    let bnorm = st.dm.layout.norm2(comm, &b_loc);
                    let x_global = gather_vector(comm, &st.dm.layout, &x, self.n_global);
                    let comm_after = comm.stats();
                    per_rhs.push(RhsOut {
                        iterations: rep.iterations,
                        converged: rep.converged,
                        final_relres: rep.final_relres,
                        breakdown: rep.breakdown,
                        rnorm,
                        bnorm,
                        x_global,
                        busy_s: rhs_t0.elapsed().as_secs_f64(),
                        comm: parapre_mpisim::CommStats::delta(&comm_after, &comm_before),
                        solve_s: rhs_t0.elapsed().as_secs_f64(),
                    });
                    comm_before = comm_after;
                }
                per_rhs
            },
        );
        let batch_seconds = t0.elapsed().as_secs_f64();
        let mut ranks = Vec::with_capacity(p);
        let mut failures = Vec::new();
        for out in outs {
            match out {
                Ok(o) => ranks.push(o),
                Err(f) => failures.push(f.to_string()),
            }
        }
        if !failures.is_empty() {
            return Err(EngineError::Solve(failures.join("; ")));
        }
        let k = rhss.len();
        let mut reports = Vec::with_capacity(k);
        for j in 0..k {
            let load = parapre_metrics::LoadReport::new(
                ranks
                    .iter()
                    .enumerate()
                    .map(|(r, per_rhs)| {
                        let o = &per_rhs[j];
                        parapre_metrics::RankLoad {
                            rank: r,
                            busy_s: o.busy_s,
                            comm_wait_s: o.comm.wait_us as f64 * 1e-6,
                            msgs_sent: o.comm.msgs_sent,
                            bytes_sent: o.comm.bytes_sent,
                            msgs_recv: o.comm.msgs_recv,
                            bytes_recv: o.comm.bytes_recv,
                        }
                    })
                    .collect(),
            );
            let root = &mut ranks[0][j];
            let true_relres = if root.bnorm > 0.0 {
                root.rnorm / root.bnorm
            } else {
                root.rnorm
            };
            let report = SessionSolveReport {
                x: root.x_global.take().expect("rank 0 gathers"),
                iterations: root.iterations,
                converged: root.converged,
                final_relres: root.final_relres,
                true_relres,
                solve_seconds: root.solve_s,
                breakdown: root.breakdown,
                load,
            };
            self.record_solve_metrics(report.solve_seconds, report.iterations, &report.load);
            reports.push(report);
        }
        if parapre_metrics::enabled() {
            parapre_metrics::inc(parapre_metrics::names::BATCH_RHS_TOTAL, k as u64);
            parapre_metrics::observe_us(
                parapre_metrics::names::BATCH_SOLVE_US,
                (batch_seconds * 1e6) as u64,
            );
        }
        Ok(BatchSolveReport {
            reports,
            batch_seconds,
        })
    }

    /// Traced solve: installs a `parapre-trace` recorder on every rank and
    /// returns the event streams alongside the report. Used to *assert*
    /// that the hot path performs no factorization work (no `setup.factor`
    /// span may appear).
    pub fn solve_traced(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
    ) -> Result<(SessionSolveReport, Vec<parapre_trace::RankTrace>), EngineError> {
        self.solve_opts(b, x0, true)
    }

    fn solve_opts(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        trace: bool,
    ) -> Result<(SessionSolveReport, Vec<parapre_trace::RankTrace>), EngineError> {
        self.solve_attempt(b, x0, trace, None, None)
            .map_err(|fails| {
                EngineError::Solve(
                    fails
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                )
            })
    }

    /// One solve attempt with optional fault injection and checkpointing,
    /// returning the *structured* per-rank failures instead of a flattened
    /// error string — the resilience layer needs to know which rank died
    /// and whether the death was injected.
    pub fn solve_attempt(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        trace: bool,
        faults: Option<Arc<dyn FaultHook>>,
        ckpt: Option<CheckpointCtx<'_>>,
    ) -> Result<(SessionSolveReport, Vec<parapre_trace::RankTrace>), Vec<RankFailure>> {
        assert_eq!(b.len(), self.n_global, "rhs length");
        if let Some(x0) = x0 {
            assert_eq!(x0.len(), self.n_global, "guess length");
        }
        // A migrated session's carried iterate stands in for a missing guess.
        let x0 = x0.or(self.warm_start.as_deref());
        struct RankOut {
            iterations: usize,
            converged: bool,
            final_relres: f64,
            breakdown: Option<parapre_dist::SolveBreakdown>,
            rnorm: f64,
            bnorm: f64,
            x_global: Option<Vec<f64>>,
            trace: Option<parapre_trace::RankTrace>,
            busy_s: f64,
            comm: parapre_mpisim::CommStats,
        }
        let p = self.cfg.n_ranks;
        let t0 = Instant::now();
        let outs = Universe::try_run_with_threads(
            p,
            self.cfg.recv_timeout,
            faults,
            self.cfg.threads_per_rank,
            |comm| {
                if trace {
                    parapre_trace::install(comm.rank());
                }
                let rank_t0 = Instant::now();
                let st = &self.ranks[comm.rank()];
                let n_owned = st.dm.layout.n_owned();
                let b_loc = scatter_vector(&st.dm.layout, b);
                let mut x = match x0 {
                    Some(g) => scatter_vector(&st.dm.layout, g),
                    None => vec![0.0; n_owned],
                };
                let rep = DistGmres::new(self.cfg.gmres).solve_with_checkpoint(
                    comm,
                    &st.dm,
                    &st.precond,
                    &b_loc,
                    &mut x,
                    ckpt,
                );
                // True residual ‖b − Ax‖ / ‖b‖, assembled distributed.
                let mut ax = vec![0.0; n_owned];
                DistOp::apply(&st.dm, comm, &x, &mut ax);
                let r: Vec<f64> = b_loc.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
                let rnorm = st.dm.layout.norm2(comm, &r);
                let bnorm = st.dm.layout.norm2(comm, &b_loc);
                let x_global = gather_vector(comm, &st.dm.layout, &x, self.n_global);
                RankOut {
                    iterations: rep.iterations,
                    converged: rep.converged,
                    final_relres: rep.final_relres,
                    breakdown: rep.breakdown,
                    rnorm,
                    bnorm,
                    x_global,
                    trace: if trace { parapre_trace::take() } else { None },
                    busy_s: rank_t0.elapsed().as_secs_f64(),
                    comm: comm.stats(),
                }
            },
        );
        let solve_seconds = t0.elapsed().as_secs_f64();
        let mut ranks = Vec::with_capacity(p);
        let mut failures = Vec::new();
        for out in outs {
            match out {
                Ok(o) => ranks.push(o),
                Err(f) => failures.push(f),
            }
        }
        if !failures.is_empty() {
            return Err(failures);
        }
        let traces: Vec<parapre_trace::RankTrace> =
            ranks.iter_mut().filter_map(|o| o.trace.take()).collect();
        let root = &ranks[0];
        let true_relres = if root.bnorm > 0.0 {
            root.rnorm / root.bnorm
        } else {
            root.rnorm
        };
        let load = parapre_metrics::LoadReport::new(
            ranks
                .iter()
                .enumerate()
                .map(|(r, o)| parapre_metrics::RankLoad {
                    rank: r,
                    busy_s: o.busy_s,
                    comm_wait_s: o.comm.wait_us as f64 * 1e-6,
                    msgs_sent: o.comm.msgs_sent,
                    bytes_sent: o.comm.bytes_sent,
                    msgs_recv: o.comm.msgs_recv,
                    bytes_recv: o.comm.bytes_recv,
                })
                .collect(),
        );
        self.record_solve_metrics(solve_seconds, ranks[0].iterations, &load);
        let report = SessionSolveReport {
            x: ranks[0].x_global.take().expect("rank 0 gathers"),
            iterations: ranks[0].iterations,
            converged: ranks[0].converged,
            final_relres: ranks[0].final_relres,
            true_relres,
            solve_seconds,
            breakdown: ranks[0].breakdown,
            load,
        };
        Ok((report, traces))
    }

    /// Folds one finished solve into the live registry: latency
    /// histograms (global and keyed by fingerprint + active rung),
    /// the iteration histogram, and the load-imbalance gauges.
    fn record_solve_metrics(
        &self,
        solve_seconds: f64,
        iterations: usize,
        load: &parapre_metrics::LoadReport,
    ) {
        use parapre_metrics::names;
        *self.last_load.lock().expect("load lock") = Some(load.clone());
        if !parapre_metrics::enabled() {
            return;
        }
        let us = (solve_seconds * 1e6) as u64;
        parapre_metrics::inc(names::SOLVES_TOTAL, 1);
        parapre_metrics::observe_us(names::SOLVE_US, us);
        parapre_metrics::observe_us(
            &names::keyed_solve(self.fingerprint, self.active_precond().key()),
            us,
        );
        parapre_metrics::observe_us(names::SOLVE_ITERS, iterations as u64);
        parapre_metrics::gauge_set(names::LOAD_IMBALANCE, load.imbalance());
        parapre_metrics::gauge_set(names::LOAD_COMM_FRACTION, load.comm_fraction());
        if let Some(r) = load.slowest_rank() {
            parapre_metrics::gauge_set(names::LOAD_SLOWEST_RANK, r as f64);
        }
    }

    /// The configuration this session was frozen with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Global problem size.
    pub fn n_unknowns(&self) -> usize {
        self.n_global
    }

    /// Content fingerprint of the distributed matrix.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Wall time of the one-off setup (partition + distribute + factor).
    pub fn setup_seconds(&self) -> f64 {
        self.setup_seconds
    }

    /// The preconditioner actually in use — the fallback-ladder rung the
    /// build landed on (equals the configured kind when no fallback fired).
    pub fn active_precond(&self) -> PrecondKind {
        self.ranks[0].kind_used
    }

    /// Ladder rungs descended below the configured preconditioner at build
    /// time (rank-identical; 0 on a clean build).
    pub fn build_fallbacks(&self) -> usize {
        self.ranks[0].fallbacks
    }

    /// Total diagonal-shift retries spent factoring, summed over ranks.
    pub fn pivot_shifts(&self) -> usize {
        self.ranks.iter().map(|r| r.pivot_shifts).sum()
    }

    /// The (structurally symmetrized) global matrix this session solves.
    pub fn matrix(&self) -> &Csr {
        &self.a_global
    }

    /// Per-unknown owner map.
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// Assembles per-rank owned slices (rank order, layout ordering) into a
    /// global vector — the inverse of [`scatter_vector`] over all ranks.
    /// Used to turn a consistent checkpoint into a restart guess.
    pub fn assemble_global(&self, per_rank: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(per_rank.len(), self.ranks.len());
        let mut out = vec![0.0; self.n_global];
        for (st, xs) in self.ranks.iter().zip(per_rank) {
            let layout = &st.dm.layout;
            assert_eq!(xs.len(), layout.n_owned());
            for (l, &v) in xs.iter().enumerate() {
                out[layout.local_to_global[l]] = v;
            }
        }
        out
    }

    /// The warm-start iterate carried through a migration (`None` for
    /// freshly built sessions). Solves without an explicit guess use it.
    pub fn warm_start(&self) -> Option<&[f64]> {
        self.warm_start.as_deref()
    }

    /// Per-rank load attribution of the most recent solve on this session
    /// (`None` until the first solve completes). The rebalance policy's
    /// observation stream.
    pub fn last_load(&self) -> Option<parapre_metrics::LoadReport> {
        self.last_load.lock().expect("load lock").clone()
    }

    /// Migrates the session to a new rank topology between solves.
    /// See [`SolverSession::migrate_opts`]; this is the plain form with no
    /// warm-start carry and no fault injection.
    pub fn migrate(
        &self,
        plan: &MigrationPlan,
    ) -> Result<(SolverSession, MigrationReport), EngineError> {
        self.migrate_opts(plan, None, None)
    }

    /// Migrates the session to the topology described by `plan`, returning
    /// a **new** session; `self` stays fully intact and serving.
    ///
    /// Subdomains whose coupling closure the plan left untouched
    /// ([`RankDisposition::Reuse`]) carry their factor, layout, and
    /// communication plan over by `Arc` — no re-extraction, no
    /// re-factorization. The rest re-extract their block from the retained
    /// global matrix (the same principal-submatrix machinery the degraded
    /// path uses) and re-factor **strictly** on the session's active
    /// ladder rung: migration never silently changes the preconditioner.
    ///
    /// Robustness protocol, in order, inside one universe of `P'` ranks:
    ///
    /// 1. every rank votes on a digest of the new topology
    ///    (`all_agree_u64`) — a torn plan aborts before any work;
    /// 2. each rebuilding rank checks its re-extracted rows for non-finite
    ///    entries, and the outcome is agreed collectively (`all_land`,
    ///    like the fallback ladder) *before* any collective factorization,
    ///    so no rank can enter a collective build alone;
    /// 3. factorization failures are voted the same way;
    /// 4. a rank killed mid-migration surfaces as a [`RankFailure`] and
    ///    aborts the whole migration.
    ///
    /// On any abort this returns `Err` and the old topology — which was
    /// never touched — keeps serving. On success the candidate still has
    /// to pass a cheap distributed-SpMV residual probe (exercising the
    /// comm plans of both reused and rebuilt ranks against the serial
    /// matrix) before it is handed back.
    ///
    /// `warm_start` (global indexing, preserved across repartitioning) is
    /// stored on the new session and seeds its guess-less solves.
    pub fn migrate_opts(
        &self,
        plan: &MigrationPlan,
        warm_start: Option<&[f64]>,
        faults: Option<Arc<dyn FaultHook>>,
    ) -> Result<(SolverSession, MigrationReport), EngineError> {
        use parapre_metrics::names;
        let abort = |msg: String| {
            if parapre_metrics::enabled() {
                parapre_metrics::inc(names::ELASTIC_ABORTS_TOTAL, 1);
            }
            Err(EngineError::Setup(msg))
        };
        if plan.old_p != self.cfg.n_ranks || plan.old_owner != self.owner {
            return abort("migration plan was computed for a different topology".into());
        }
        if let Some(w) = warm_start {
            if w.len() != self.n_global {
                return abort("warm-start length mismatch".into());
            }
        }
        let mut plan = plan.clone();
        let kind = self.active_precond();
        if matches!(kind, PrecondKind::Schur2 | PrecondKind::SchurML { .. }) {
            // Collective builds: mixing reused and rebuilt subdomains
            // would leave some ranks out of a build others join.
            plan.make_collective();
        }
        let t0 = Instant::now();
        let new_p = plan.new_p;
        let topo_tag = plan.topology_tag();
        let a = &self.a_global;
        let plan_ref = &plan;
        let fallbacks = self.ranks[0].fallbacks;
        let params = &self.cfg.params;
        let outs = Universe::try_run_with_threads(
            new_p,
            self.cfg.recv_timeout,
            faults,
            self.cfg.threads_per_rank,
            move |comm| -> Option<RankState> {
                let r = comm.rank();
                // 1. Torn-plan tripwire: all ranks must hold one topology.
                let agreed = comm.all_agree_u64(topo_tag, tags::REDUCE + 64);
                let rebuild = plan_ref.disposition[r] == RankDisposition::Rebuild;
                // 2. Re-extracted rows must be finite before any (possibly
                //    collective) factorization may start.
                let finite = !rebuild
                    || (0..a.n_rows())
                        .filter(|&i| plan_ref.new_owner[i] == r as u32)
                        .all(|i| a.row(i).1.iter().all(|v| v.is_finite()));
                if !comm.all_land(agreed && finite, tags::REDUCE + 67) {
                    return None;
                }
                let local = if rebuild {
                    let dm = DistMatrix::from_global(a, &plan_ref.new_owner, r, new_p);
                    match try_build_dist_precond(kind, &dm, comm, a, params) {
                        Ok((precond, shifts)) => Some(RankState {
                            dm: Arc::new(dm),
                            precond: Arc::from(precond),
                            kind_used: kind,
                            fallbacks,
                            pivot_shifts: shifts,
                        }),
                        Err(_) => None,
                    }
                } else {
                    let st = &self.ranks[r];
                    Some(RankState {
                        dm: st.dm.clone(),
                        precond: st.precond.clone(),
                        kind_used: st.kind_used,
                        fallbacks: st.fallbacks,
                        pivot_shifts: st.pivot_shifts,
                    })
                };
                // 3. Factorization outcome is voted like the fallback
                //    ladder: one failed block aborts everyone.
                if !comm.all_land(local.is_some(), tags::REDUCE + 68) {
                    return None;
                }
                local
            },
        );
        let mut ranks = Vec::with_capacity(new_p);
        let mut failures = Vec::new();
        let mut vetoed = false;
        for out in outs {
            match out {
                Ok(Some(st)) => ranks.push(st),
                Ok(None) => vetoed = true,
                Err(f) => failures.push(f.to_string()),
            }
        }
        if !failures.is_empty() {
            // 4. A rank died mid-migration (injected or real): abort, old
            //    topology keeps serving.
            return abort(format!(
                "migration aborted, old topology retained: {}",
                failures.join("; ")
            ));
        }
        if vetoed || ranks.len() != new_p {
            return abort(
                "migration aborted by collective vote (torn plan, non-finite block, \
                 or factorization failure); old topology retained"
                    .into(),
            );
        }
        let mut cfg = self.cfg.clone();
        cfg.n_ranks = new_p;
        cfg.partition_tag = Some(topo_tag);
        let candidate = SolverSession {
            cfg,
            n_global: self.n_global,
            fingerprint: self.fingerprint,
            setup_seconds: t0.elapsed().as_secs_f64(),
            ranks,
            a_global: self.a_global.clone(),
            owner: plan.new_owner.clone(),
            warm_start: warm_start.map(|w| w.to_vec()),
            last_load: std::sync::Mutex::new(None),
        };
        // Residual probe: one distributed SpMV through the candidate's
        // comm plans (reused and rebuilt alike) against the serial matrix.
        let probe_relerr = match candidate.probe_spmv() {
            Ok(e) => e,
            Err(msg) => return abort(format!("migration probe failed: {msg}")),
        };
        if probe_relerr > PROBE_RTOL {
            return abort(format!(
                "migration probe rejected the new topology \
                 (relative SpMV error {probe_relerr:.3e} > {PROBE_RTOL:.1e}); \
                 old topology retained"
            ));
        }
        let report = MigrationReport {
            reused_ranks: plan.reused_ranks(),
            rebuilt_ranks: new_p - plan.reused_ranks(),
            moved_rows: plan.moved_rows,
            migrate_seconds: t0.elapsed().as_secs_f64(),
            probe_relerr,
        };
        if parapre_metrics::enabled() {
            parapre_metrics::inc(names::ELASTIC_REBALANCES_TOTAL, 1);
            parapre_metrics::observe_us(
                names::ELASTIC_MIGRATE_US,
                (report.migrate_seconds * 1e6) as u64,
            );
            parapre_metrics::gauge_set(names::ELASTIC_REUSED_RANKS, report.reused_ranks as f64);
        }
        Ok((candidate, report))
    }

    /// Cheap correctness probe: applies the distributed operator to a
    /// deterministic vector and compares against the serial SpMV. Returns
    /// the relative error.
    fn probe_spmv(&self) -> Result<f64, String> {
        let n = self.n_global;
        let v: Vec<f64> = (0..n).map(|i| (0.61 * i as f64).cos()).collect();
        let mut y_ref = vec![0.0; n];
        self.a_global.spmv(&v, &mut y_ref);
        let p = self.cfg.n_ranks;
        let v_ref = &v;
        let outs = Universe::try_run_with_threads(
            p,
            self.cfg.recv_timeout,
            None,
            self.cfg.threads_per_rank,
            move |comm| {
                let st = &self.ranks[comm.rank()];
                let v_loc = scatter_vector(&st.dm.layout, v_ref);
                let mut y = vec![0.0; st.dm.layout.n_owned()];
                DistOp::apply(&st.dm, comm, &v_loc, &mut y);
                gather_vector(comm, &st.dm.layout, &y, v_ref.len())
            },
        );
        let mut gathered = None;
        for out in outs {
            match out {
                Ok(Some(y)) => gathered = Some(y),
                Ok(None) => {}
                Err(f) => return Err(f.to_string()),
            }
        }
        let y = gathered.ok_or_else(|| "probe gathered nothing".to_string())?;
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in y.iter().zip(&y_ref) {
            num += (a - b) * (a - b);
            den += b * b;
        }
        if !num.is_finite() || !den.is_finite() {
            return Err("non-finite probe result".into());
        }
        Ok(if den > 0.0 {
            (num / den).sqrt()
        } else {
            num.sqrt()
        })
    }
}

/// Relative SpMV error above which a migration probe rejects the
/// candidate topology (the exchange is exact in exact arithmetic; the
/// tolerance only absorbs non-associative summation order).
const PROBE_RTOL: f64 = 1e-10;

/// What a successful [`SolverSession::migrate`] did.
#[derive(Debug, Clone, Copy)]
pub struct MigrationReport {
    /// Subdomains whose factor and comm plan were carried over verbatim.
    pub reused_ranks: usize,
    /// Subdomains re-extracted and re-factored.
    pub rebuilt_ranks: usize,
    /// Vertices whose owner changed.
    pub moved_rows: usize,
    /// Wall time of the migration (vote, re-extraction, factorization).
    pub migrate_seconds: f64,
    /// Relative error of the post-migration distributed-SpMV probe.
    pub probe_relerr: f64,
}

/// Symmetrizes a general matrix's *pattern* (values untouched: the
/// transpose entries are added with value zero) and partitions the
/// resulting graph — the adoption path for arbitrary Matrix Market input,
/// whose layouts require structurally symmetric coupling.
pub fn partition_matrix(a: &Csr, n_ranks: usize, seed: u64) -> (Csr, Vec<u32>) {
    let mut at = a.transpose();
    for v in at.vals_mut() {
        *v = 0.0;
    }
    let a_sym = a.add(1.0, &at).expect("same shape");
    let graph = matrix_graph(&a_sym);
    let part = partition_graph(&graph, n_ranks, seed);
    (a_sym, part.owner)
}

/// The symmetrized pattern graph of a square matrix (self-loops dropped).
pub fn matrix_graph(a: &Csr) -> Adjacency {
    let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); a.n_rows()];
    for (i, j, _) in a.iter() {
        if i != j {
            nbrs[i].push(j);
            nbrs[j].push(i);
        }
    }
    let mut xadj = vec![0usize];
    let mut adjncy = Vec::new();
    for list in &mut nbrs {
        list.sort_unstable();
        list.dedup();
        adjncy.extend_from_slice(list);
        xadj.push(adjncy.len());
    }
    Adjacency { xadj, adjncy }
}
