//! Cached solver sessions: partition + distribute + factor **once**, then
//! solve any number of right-hand sides against the frozen state.
//!
//! The paper's workloads are repeated solves (TC4 is one implicit step of a
//! time-dependent problem), yet the experiment runner rebuilds everything
//! per solve. A [`SolverSession`] performs the expensive setup pipeline one
//! time and keeps the per-rank state — each rank's [`DistMatrix`] and
//! factored preconditioner — alive across [`SolverSession::solve`] calls.
//! Every solve spins up a fresh universe of `P` threads that *borrow* the
//! cached rank states (this is why [`parapre_dist::DistPrecond`] requires
//! `Send + Sync`), so a session holds no threads while idle and concurrent
//! solves on one session never contend.

use crate::EngineError;
use parapre_core::{
    build_dist_precond, build_dist_precond_with_fallback, partition_case_with, AssembledCase,
    PartitionScheme, PrecondKind, PrecondParams,
};
use parapre_dist::{
    gather_vector, scatter_vector, CheckpointCtx, DistGmres, DistGmresConfig, DistMatrix, DistOp,
    DistPrecond,
};
use parapre_grid::Adjacency;
use parapre_mpisim::{FaultHook, MachineModel, RankFailure, Universe};
use parapre_partition::partition_graph;
use parapre_sparse::Csr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything that determines a session's frozen state (and therefore its
/// cache identity, together with the matrix fingerprint).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Which preconditioner to factor.
    pub precond: PrecondKind,
    /// Number of ranks `P`.
    pub n_ranks: usize,
    /// Partitioning scheme (for case-built sessions; matrix-built sessions
    /// always use general graph partitioning).
    pub scheme: PartitionScheme,
    /// Partitioner RNG seed.
    pub partition_seed: u64,
    /// Outer FGMRES parameters.
    pub gmres: DistGmresConfig,
    /// Preconditioner tuning knobs.
    pub params: PrecondParams,
    /// Deadlock tripwire for every universe this session launches.
    pub recv_timeout: Duration,
    /// Walk the preconditioner fallback ladder on factorization failure
    /// (`Schur 2 → Schur 1 → Block 2 → Block 1 → Jacobi`) instead of
    /// failing the build. All factorizations also go through the
    /// diagonal-shift retry ladder. `false` reproduces the strict
    /// fail-fast build.
    pub fallback: bool,
    /// In-rank thread budget for data-parallel kernels (`None` = the
    /// default share `⌊cores / n_ranks⌋`, or the `PARAPRE_THREADS`
    /// environment override). Results are bitwise identical at any
    /// budget; the knob only trades wall-clock for cores.
    pub threads_per_rank: Option<usize>,
}

impl SessionConfig {
    /// Paper defaults (FGMRES(20), 1e-6 reduction, Linux-cluster partition
    /// seed) for a preconditioner/rank-count pair.
    pub fn paper(precond: PrecondKind, n_ranks: usize) -> Self {
        SessionConfig {
            precond,
            n_ranks,
            scheme: PartitionScheme::General,
            partition_seed: MachineModel::linux_cluster().partition_seed,
            gmres: DistGmresConfig {
                restart: 20,
                max_iters: 600,
                rel_tol: 1e-6,
                ..Default::default()
            },
            params: PrecondParams::default(),
            recv_timeout: Duration::from_secs(60),
            fallback: true,
            threads_per_rank: None,
        }
    }

    /// Canonical string of every solver-relevant knob — the non-matrix part
    /// of the session cache key. Floats are rendered with full round-trip
    /// precision (`{:?}`), so configs differing in any bit key differently.
    pub fn config_string(&self) -> String {
        // `threads_per_rank` is deliberately absent: kernels are bitwise
        // identical at any budget, so thread counts must not fragment the
        // cache key.
        format!(
            "{}|{}|P{}|seed{}|{:?}|{:?}|fb{}",
            self.precond.cache_key(),
            self.scheme.key(),
            self.n_ranks,
            self.partition_seed,
            self.gmres,
            self.params,
            self.fallback
        )
    }
}

/// One rank's frozen setup product: its rows of the matrix and its factored
/// preconditioner. Shared read-only (`Sync`) by every subsequent solve.
struct RankState {
    dm: DistMatrix,
    precond: Box<dyn DistPrecond>,
    /// Ladder rung the preconditioner was actually built on (identical on
    /// every rank; equals the configured kind with `fallback: false`).
    kind_used: PrecondKind,
    /// Ladder rungs descended below the configured kind (rank-identical).
    fallbacks: usize,
    /// Diagonal-shift retries this rank's factorization spent.
    pivot_shifts: usize,
}

/// A solver session: setup performed once, solves served on demand.
pub struct SolverSession {
    cfg: SessionConfig,
    n_global: usize,
    fingerprint: u64,
    setup_seconds: f64,
    ranks: Vec<RankState>,
    /// The distributed global matrix and owner map, retained so the
    /// resilience layer can build degraded (reduced) systems and verify
    /// full-system residuals without re-partitioning.
    a_global: Csr,
    owner: Vec<u32>,
}

/// The outcome of one [`SolverSession::solve`].
#[derive(Debug, Clone)]
pub struct SessionSolveReport {
    /// The assembled global solution.
    pub x: Vec<f64>,
    /// Outer FGMRES iterations.
    pub iterations: usize,
    /// Whether the relative-residual target was met.
    pub converged: bool,
    /// The solver's recursive residual estimate `‖r‖/‖r₀‖`.
    pub final_relres: f64,
    /// The *true* residual `‖b − Ax‖/‖b‖`, recomputed from scratch after
    /// the solve (catches any drift in the recursive estimate).
    pub true_relres: f64,
    /// Wall time of this solve (universe launch to join).
    pub solve_seconds: f64,
    /// Typed breakdown when the solver stopped for a numerical reason
    /// (`None` on clean convergence or a plain iteration-budget exit).
    pub breakdown: Option<parapre_dist::SolveBreakdown>,
    /// Per-rank busy/comm-wait attribution of this solve. Comm-wait
    /// seconds are only populated while the live metrics layer is
    /// enabled; busy seconds and traffic counts are always measured.
    pub load: parapre_metrics::LoadReport,
}

/// Options of one batched multi-RHS solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Seed each right-hand side's solve with the previous one's solution
    /// (useful when the batch is a time-like sequence; off, every RHS
    /// starts from the zero vector / the supplied guess).
    pub warm_start: bool,
}

/// The outcome of one [`SolverSession::solve_batch`]: per-RHS reports plus
/// the batch wall time (one universe launch amortized over all of them).
#[derive(Debug, Clone)]
pub struct BatchSolveReport {
    /// One report per right-hand side, in submission order.
    pub reports: Vec<SessionSolveReport>,
    /// Wall time of the whole batch (universe launch to join).
    pub batch_seconds: f64,
}

impl BatchSolveReport {
    /// Whether every RHS met the residual target.
    pub fn all_converged(&self) -> bool {
        self.reports.iter().all(|r| r.converged)
    }

    /// Total outer iterations across the batch.
    pub fn total_iterations(&self) -> usize {
        self.reports.iter().map(|r| r.iterations).sum()
    }
}

impl SolverSession {
    /// Builds a session from a global matrix and a per-unknown owner map:
    /// distributes rows and factors the preconditioner on every rank, once.
    pub fn build(
        a: &Csr,
        owner: &[u32],
        cfg: &SessionConfig,
    ) -> Result<SolverSession, EngineError> {
        assert_eq!(a.n_rows(), a.n_cols(), "square systems only");
        assert_eq!(owner.len(), a.n_rows(), "one owner per unknown");
        let p = cfg.n_ranks;
        let fingerprint = a.fingerprint();
        let t0 = Instant::now();
        let cfg_ref = &cfg;
        let outs = Universe::try_run_with_threads(
            p,
            cfg.recv_timeout,
            None,
            cfg.threads_per_rank,
            move |comm| {
                let _setup = parapre_trace::span(parapre_trace::phase::SETUP);
                let dm = DistMatrix::from_global(a, owner, comm.rank(), p);
                if cfg_ref.fallback {
                    let built = build_dist_precond_with_fallback(
                        cfg_ref.precond,
                        &dm,
                        comm,
                        a,
                        &cfg_ref.params,
                    );
                    RankState {
                        dm,
                        precond: built.precond,
                        kind_used: built.kind_used,
                        fallbacks: built.fallbacks,
                        pivot_shifts: built.pivot_shifts,
                    }
                } else {
                    let precond =
                        build_dist_precond(cfg_ref.precond, &dm, comm, a, &cfg_ref.params);
                    RankState {
                        dm,
                        precond,
                        kind_used: cfg_ref.precond,
                        fallbacks: 0,
                        pivot_shifts: 0,
                    }
                }
            },
        );
        let mut ranks = Vec::with_capacity(p);
        let mut failures = Vec::new();
        for out in outs {
            match out {
                Ok(st) => ranks.push(st),
                Err(f) => failures.push(f.to_string()),
            }
        }
        if !failures.is_empty() {
            return Err(EngineError::Setup(failures.join("; ")));
        }
        Ok(SolverSession {
            cfg: cfg.clone(),
            n_global: a.n_rows(),
            fingerprint,
            setup_seconds: t0.elapsed().as_secs_f64(),
            ranks,
            a_global: a.clone(),
            owner: owner.to_vec(),
        })
    }

    /// Builds a session for an assembled test case (partitions the node
    /// graph under the configured scheme, then expands to dof owners).
    pub fn from_case(
        case: &AssembledCase,
        cfg: &SessionConfig,
    ) -> Result<SolverSession, EngineError> {
        let node_part = partition_case_with(case, cfg.scheme, cfg.n_ranks, cfg.partition_seed);
        let owner = case.dof_owner(&node_part.owner);
        Self::build(&case.sys.a, &owner, cfg)
    }

    /// Builds a session straight from a general square matrix (the Matrix
    /// Market path): the sparsity pattern is symmetrized for the layout and
    /// the rows are partitioned with the general graph scheme.
    pub fn from_matrix(a: &Csr, cfg: &SessionConfig) -> Result<SolverSession, EngineError> {
        let (a_sym, owner) = partition_matrix(a, cfg.n_ranks, cfg.partition_seed);
        Self::build(&a_sym, &owner, cfg)
    }

    /// Solves `A x = b` against the cached factors (zero initial guess).
    pub fn solve(&self, b: &[f64]) -> Result<SessionSolveReport, EngineError> {
        self.solve_opts(b, None, false).map(|(rep, _)| rep)
    }

    /// [`SolverSession::solve`] with an explicit initial guess (the paper
    /// seeds TC4 solves with the previous time step's state).
    pub fn solve_with_guess(
        &self,
        b: &[f64],
        x0: &[f64],
    ) -> Result<SessionSolveReport, EngineError> {
        self.solve_opts(b, Some(x0), false).map(|(rep, _)| rep)
    }

    /// Solves `A x = b_j` for every right-hand side in `rhss` inside **one**
    /// universe launch: the factorization, partition, comm plan, scatter
    /// tables, and the `P` rank threads are all shared across the batch, so
    /// the per-solve overhead (thread spawn + join, plan setup) is paid
    /// once instead of `k` times. RHS are solved in order (pipelined
    /// per-RHS); with [`BatchOptions::warm_start`] each solve is seeded
    /// with the previous solution.
    pub fn solve_batch(
        &self,
        rhss: &[Vec<f64>],
        x0: Option<&[f64]>,
        opts: BatchOptions,
    ) -> Result<BatchSolveReport, EngineError> {
        assert!(!rhss.is_empty(), "batch needs at least one rhs");
        for b in rhss {
            assert_eq!(b.len(), self.n_global, "rhs length");
        }
        if let Some(x0) = x0 {
            assert_eq!(x0.len(), self.n_global, "guess length");
        }
        struct RhsOut {
            iterations: usize,
            converged: bool,
            final_relres: f64,
            breakdown: Option<parapre_dist::SolveBreakdown>,
            rnorm: f64,
            bnorm: f64,
            x_global: Option<Vec<f64>>,
            busy_s: f64,
            comm: parapre_mpisim::CommStats,
            solve_s: f64,
        }
        let p = self.cfg.n_ranks;
        let t0 = Instant::now();
        let outs = Universe::try_run_with_threads(
            p,
            self.cfg.recv_timeout,
            None,
            self.cfg.threads_per_rank,
            |comm| {
                let st = &self.ranks[comm.rank()];
                let n_owned = st.dm.layout.n_owned();
                let mut x = match x0 {
                    Some(g) => scatter_vector(&st.dm.layout, g),
                    None => vec![0.0; n_owned],
                };
                let mut per_rhs = Vec::with_capacity(rhss.len());
                let mut comm_before = comm.stats();
                for b in rhss {
                    let rhs_t0 = Instant::now();
                    let b_loc = scatter_vector(&st.dm.layout, b);
                    if !opts.warm_start {
                        x = match x0 {
                            Some(g) => scatter_vector(&st.dm.layout, g),
                            None => vec![0.0; n_owned],
                        };
                    }
                    let rep = DistGmres::new(self.cfg.gmres).solve(
                        comm,
                        &st.dm,
                        &st.precond,
                        &b_loc,
                        &mut x,
                    );
                    let mut ax = vec![0.0; n_owned];
                    DistOp::apply(&st.dm, comm, &x, &mut ax);
                    let r: Vec<f64> = b_loc.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
                    let rnorm = st.dm.layout.norm2(comm, &r);
                    let bnorm = st.dm.layout.norm2(comm, &b_loc);
                    let x_global = gather_vector(comm, &st.dm.layout, &x, self.n_global);
                    let comm_after = comm.stats();
                    per_rhs.push(RhsOut {
                        iterations: rep.iterations,
                        converged: rep.converged,
                        final_relres: rep.final_relres,
                        breakdown: rep.breakdown,
                        rnorm,
                        bnorm,
                        x_global,
                        busy_s: rhs_t0.elapsed().as_secs_f64(),
                        comm: parapre_mpisim::CommStats::delta(&comm_after, &comm_before),
                        solve_s: rhs_t0.elapsed().as_secs_f64(),
                    });
                    comm_before = comm_after;
                }
                per_rhs
            },
        );
        let batch_seconds = t0.elapsed().as_secs_f64();
        let mut ranks = Vec::with_capacity(p);
        let mut failures = Vec::new();
        for out in outs {
            match out {
                Ok(o) => ranks.push(o),
                Err(f) => failures.push(f.to_string()),
            }
        }
        if !failures.is_empty() {
            return Err(EngineError::Solve(failures.join("; ")));
        }
        let k = rhss.len();
        let mut reports = Vec::with_capacity(k);
        for j in 0..k {
            let load = parapre_metrics::LoadReport::new(
                ranks
                    .iter()
                    .enumerate()
                    .map(|(r, per_rhs)| {
                        let o = &per_rhs[j];
                        parapre_metrics::RankLoad {
                            rank: r,
                            busy_s: o.busy_s,
                            comm_wait_s: o.comm.wait_us as f64 * 1e-6,
                            msgs_sent: o.comm.msgs_sent,
                            bytes_sent: o.comm.bytes_sent,
                            msgs_recv: o.comm.msgs_recv,
                            bytes_recv: o.comm.bytes_recv,
                        }
                    })
                    .collect(),
            );
            let root = &mut ranks[0][j];
            let true_relres = if root.bnorm > 0.0 {
                root.rnorm / root.bnorm
            } else {
                root.rnorm
            };
            let report = SessionSolveReport {
                x: root.x_global.take().expect("rank 0 gathers"),
                iterations: root.iterations,
                converged: root.converged,
                final_relres: root.final_relres,
                true_relres,
                solve_seconds: root.solve_s,
                breakdown: root.breakdown,
                load,
            };
            self.record_solve_metrics(report.solve_seconds, report.iterations, &report.load);
            reports.push(report);
        }
        if parapre_metrics::enabled() {
            parapre_metrics::inc(parapre_metrics::names::BATCH_RHS_TOTAL, k as u64);
            parapre_metrics::observe_us(
                parapre_metrics::names::BATCH_SOLVE_US,
                (batch_seconds * 1e6) as u64,
            );
        }
        Ok(BatchSolveReport {
            reports,
            batch_seconds,
        })
    }

    /// Traced solve: installs a `parapre-trace` recorder on every rank and
    /// returns the event streams alongside the report. Used to *assert*
    /// that the hot path performs no factorization work (no `setup.factor`
    /// span may appear).
    pub fn solve_traced(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
    ) -> Result<(SessionSolveReport, Vec<parapre_trace::RankTrace>), EngineError> {
        self.solve_opts(b, x0, true)
    }

    fn solve_opts(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        trace: bool,
    ) -> Result<(SessionSolveReport, Vec<parapre_trace::RankTrace>), EngineError> {
        self.solve_attempt(b, x0, trace, None, None)
            .map_err(|fails| {
                EngineError::Solve(
                    fails
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                )
            })
    }

    /// One solve attempt with optional fault injection and checkpointing,
    /// returning the *structured* per-rank failures instead of a flattened
    /// error string — the resilience layer needs to know which rank died
    /// and whether the death was injected.
    pub fn solve_attempt(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        trace: bool,
        faults: Option<Arc<dyn FaultHook>>,
        ckpt: Option<CheckpointCtx<'_>>,
    ) -> Result<(SessionSolveReport, Vec<parapre_trace::RankTrace>), Vec<RankFailure>> {
        assert_eq!(b.len(), self.n_global, "rhs length");
        if let Some(x0) = x0 {
            assert_eq!(x0.len(), self.n_global, "guess length");
        }
        struct RankOut {
            iterations: usize,
            converged: bool,
            final_relres: f64,
            breakdown: Option<parapre_dist::SolveBreakdown>,
            rnorm: f64,
            bnorm: f64,
            x_global: Option<Vec<f64>>,
            trace: Option<parapre_trace::RankTrace>,
            busy_s: f64,
            comm: parapre_mpisim::CommStats,
        }
        let p = self.cfg.n_ranks;
        let t0 = Instant::now();
        let outs = Universe::try_run_with_threads(
            p,
            self.cfg.recv_timeout,
            faults,
            self.cfg.threads_per_rank,
            |comm| {
                if trace {
                    parapre_trace::install(comm.rank());
                }
                let rank_t0 = Instant::now();
                let st = &self.ranks[comm.rank()];
                let n_owned = st.dm.layout.n_owned();
                let b_loc = scatter_vector(&st.dm.layout, b);
                let mut x = match x0 {
                    Some(g) => scatter_vector(&st.dm.layout, g),
                    None => vec![0.0; n_owned],
                };
                let rep = DistGmres::new(self.cfg.gmres).solve_with_checkpoint(
                    comm,
                    &st.dm,
                    &st.precond,
                    &b_loc,
                    &mut x,
                    ckpt,
                );
                // True residual ‖b − Ax‖ / ‖b‖, assembled distributed.
                let mut ax = vec![0.0; n_owned];
                DistOp::apply(&st.dm, comm, &x, &mut ax);
                let r: Vec<f64> = b_loc.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
                let rnorm = st.dm.layout.norm2(comm, &r);
                let bnorm = st.dm.layout.norm2(comm, &b_loc);
                let x_global = gather_vector(comm, &st.dm.layout, &x, self.n_global);
                RankOut {
                    iterations: rep.iterations,
                    converged: rep.converged,
                    final_relres: rep.final_relres,
                    breakdown: rep.breakdown,
                    rnorm,
                    bnorm,
                    x_global,
                    trace: if trace { parapre_trace::take() } else { None },
                    busy_s: rank_t0.elapsed().as_secs_f64(),
                    comm: comm.stats(),
                }
            },
        );
        let solve_seconds = t0.elapsed().as_secs_f64();
        let mut ranks = Vec::with_capacity(p);
        let mut failures = Vec::new();
        for out in outs {
            match out {
                Ok(o) => ranks.push(o),
                Err(f) => failures.push(f),
            }
        }
        if !failures.is_empty() {
            return Err(failures);
        }
        let traces: Vec<parapre_trace::RankTrace> =
            ranks.iter_mut().filter_map(|o| o.trace.take()).collect();
        let root = &ranks[0];
        let true_relres = if root.bnorm > 0.0 {
            root.rnorm / root.bnorm
        } else {
            root.rnorm
        };
        let load = parapre_metrics::LoadReport::new(
            ranks
                .iter()
                .enumerate()
                .map(|(r, o)| parapre_metrics::RankLoad {
                    rank: r,
                    busy_s: o.busy_s,
                    comm_wait_s: o.comm.wait_us as f64 * 1e-6,
                    msgs_sent: o.comm.msgs_sent,
                    bytes_sent: o.comm.bytes_sent,
                    msgs_recv: o.comm.msgs_recv,
                    bytes_recv: o.comm.bytes_recv,
                })
                .collect(),
        );
        self.record_solve_metrics(solve_seconds, ranks[0].iterations, &load);
        let report = SessionSolveReport {
            x: ranks[0].x_global.take().expect("rank 0 gathers"),
            iterations: ranks[0].iterations,
            converged: ranks[0].converged,
            final_relres: ranks[0].final_relres,
            true_relres,
            solve_seconds,
            breakdown: ranks[0].breakdown,
            load,
        };
        Ok((report, traces))
    }

    /// Folds one finished solve into the live registry: latency
    /// histograms (global and keyed by fingerprint + active rung),
    /// the iteration histogram, and the load-imbalance gauges.
    fn record_solve_metrics(
        &self,
        solve_seconds: f64,
        iterations: usize,
        load: &parapre_metrics::LoadReport,
    ) {
        use parapre_metrics::names;
        if !parapre_metrics::enabled() {
            return;
        }
        let us = (solve_seconds * 1e6) as u64;
        parapre_metrics::inc(names::SOLVES_TOTAL, 1);
        parapre_metrics::observe_us(names::SOLVE_US, us);
        parapre_metrics::observe_us(
            &names::keyed_solve(self.fingerprint, self.active_precond().key()),
            us,
        );
        parapre_metrics::observe_us(names::SOLVE_ITERS, iterations as u64);
        parapre_metrics::gauge_set(names::LOAD_IMBALANCE, load.imbalance());
        parapre_metrics::gauge_set(names::LOAD_COMM_FRACTION, load.comm_fraction());
        if let Some(r) = load.slowest_rank() {
            parapre_metrics::gauge_set(names::LOAD_SLOWEST_RANK, r as f64);
        }
    }

    /// The configuration this session was frozen with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Global problem size.
    pub fn n_unknowns(&self) -> usize {
        self.n_global
    }

    /// Content fingerprint of the distributed matrix.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Wall time of the one-off setup (partition + distribute + factor).
    pub fn setup_seconds(&self) -> f64 {
        self.setup_seconds
    }

    /// The preconditioner actually in use — the fallback-ladder rung the
    /// build landed on (equals the configured kind when no fallback fired).
    pub fn active_precond(&self) -> PrecondKind {
        self.ranks[0].kind_used
    }

    /// Ladder rungs descended below the configured preconditioner at build
    /// time (rank-identical; 0 on a clean build).
    pub fn build_fallbacks(&self) -> usize {
        self.ranks[0].fallbacks
    }

    /// Total diagonal-shift retries spent factoring, summed over ranks.
    pub fn pivot_shifts(&self) -> usize {
        self.ranks.iter().map(|r| r.pivot_shifts).sum()
    }

    /// The (structurally symmetrized) global matrix this session solves.
    pub fn matrix(&self) -> &Csr {
        &self.a_global
    }

    /// Per-unknown owner map.
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// Assembles per-rank owned slices (rank order, layout ordering) into a
    /// global vector — the inverse of [`scatter_vector`] over all ranks.
    /// Used to turn a consistent checkpoint into a restart guess.
    pub fn assemble_global(&self, per_rank: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(per_rank.len(), self.ranks.len());
        let mut out = vec![0.0; self.n_global];
        for (st, xs) in self.ranks.iter().zip(per_rank) {
            let layout = &st.dm.layout;
            assert_eq!(xs.len(), layout.n_owned());
            for (l, &v) in xs.iter().enumerate() {
                out[layout.local_to_global[l]] = v;
            }
        }
        out
    }
}

/// Symmetrizes a general matrix's *pattern* (values untouched: the
/// transpose entries are added with value zero) and partitions the
/// resulting graph — the adoption path for arbitrary Matrix Market input,
/// whose layouts require structurally symmetric coupling.
pub fn partition_matrix(a: &Csr, n_ranks: usize, seed: u64) -> (Csr, Vec<u32>) {
    let mut at = a.transpose();
    for v in at.vals_mut() {
        *v = 0.0;
    }
    let a_sym = a.add(1.0, &at).expect("same shape");
    let graph = matrix_graph(&a_sym);
    let part = partition_graph(&graph, n_ranks, seed);
    (a_sym, part.owner)
}

/// The symmetrized pattern graph of a square matrix (self-loops dropped).
pub fn matrix_graph(a: &Csr) -> Adjacency {
    let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); a.n_rows()];
    for (i, j, _) in a.iter() {
        if i != j {
            nbrs[i].push(j);
            nbrs[j].push(i);
        }
    }
    let mut xadj = vec![0usize];
    let mut adjncy = Vec::new();
    for list in &mut nbrs {
        list.sort_unstable();
        list.dedup();
        adjncy.extend_from_slice(list);
        xadj.push(adjncy.len());
    }
    Adjacency { xadj, adjncy }
}
