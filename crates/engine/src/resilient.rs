//! Resilient solves: retry with backoff, checkpoint resume, degraded
//! fallback.
//!
//! The strategy ladder, cheapest first:
//!
//! 1. **Retry** the solve up to `retry_budget` more times with exponential
//!    backoff, resuming from the newest *consistent* checkpoint (cycle
//!    boundary snapshots, see [`parapre_resilience::CheckpointStore`])
//!    instead of from zero — a kill near convergence costs one restart
//!    cycle, not the whole solve. One-shot injected faults
//!    ([`parapre_resilience::FaultConfig::once`]) are the model for
//!    transient real-world failures: the retry goes through.
//! 2. **Degrade**: when retries are exhausted and the failure names dead
//!    ranks, drop their subdomains and solve the reduced system Block
//!    1-style ([`parapre_resilience::solve_degraded`]). The report keeps
//!    the honest full-system residual; `FaultOutcome::degraded` marks the
//!    answer as partial.
//! 3. **Fail** with the structured failure list when neither works.

use crate::session::{SessionSolveReport, SolverSession};
use crate::EngineError;
use parapre_dist::CheckpointCtx;
use parapre_mpisim::{FaultHook, RankFailure};
use parapre_resilience::{solve_degraded, CheckpointStore};
use std::sync::Arc;
use std::time::Instant;

/// What the resilience ladder is allowed to do for a job.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Extra attempts after the first failed one.
    pub retry_budget: usize,
    /// Base backoff before a retry, doubled per attempt (milliseconds).
    pub backoff_ms: u64,
    /// Permit the degraded (reduced-system) fallback.
    pub degrade: bool,
    /// Take restart-cycle checkpoints and resume retries from them.
    pub checkpoint: bool,
    /// On a typed numerical breakdown (non-finite arithmetic, stagnation,
    /// divergence), rebuild the session one rung down the preconditioner
    /// fallback ladder and re-solve — unifying numerical recovery with the
    /// process-level ladder above.
    pub precond_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            retry_budget: 2,
            backoff_ms: 5,
            degrade: true,
            checkpoint: true,
            precond_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no checkpoints, no degradation — fail like the plain
    /// solve path.
    pub fn none() -> Self {
        RecoveryPolicy {
            retry_budget: 0,
            backoff_ms: 0,
            degrade: false,
            checkpoint: false,
            precond_fallback: false,
        }
    }
}

/// What actually happened on the resilience ladder, success or not.
#[derive(Debug, Clone, Default)]
pub struct FaultOutcome {
    /// Failed attempts before the final one.
    pub retries: usize,
    /// Iterations inherited from a checkpoint by the final attempt.
    pub resumed_iters: usize,
    /// The answer comes from the degraded (reduced-system) path.
    pub degraded: bool,
    /// Ranks declared dead (injected kills/hangs observed in failures).
    pub dead_ranks: Vec<usize>,
    /// Honest full-system residual of a degraded answer.
    pub degraded_full_relres: Option<f64>,
    /// Classification of the terminal failure, when there was one
    /// (`"rank_failure"`, `"degraded_failed"`, ...).
    pub error_kind: Option<String>,
    /// Preconditioner-ladder rungs descended, build-time and solve-time
    /// combined.
    pub fallbacks: usize,
    /// Diagonal-shift factorization retries, summed over ranks.
    pub pivot_shifts: usize,
    /// Kind key of the last typed numerical breakdown observed
    /// (`"stagnation"`, `"non_finite"`, ...), recovered-from or not.
    pub breakdown_kind: Option<String>,
}

fn injected_dead_ranks(failures: &[RankFailure]) -> Vec<usize> {
    let mut dead: Vec<usize> = failures
        .iter()
        .filter(|f| f.injected.is_some())
        .map(|f| f.rank)
        .collect();
    dead.sort_unstable();
    dead.dedup();
    dead
}

fn join_failures(failures: &[RankFailure]) -> String {
    failures
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Runs a solve through the resilience ladder. `faults` (optional) is the
/// deterministic injection plan; pass `None` to get plain solves with
/// retry/checkpoint/degrade armed against *real* failures.
// The Err variant carries the full FaultOutcome so callers can see what
// recovery was attempted before the failure; it is constructed once per
// failed job, never on a hot path.
#[allow(clippy::result_large_err)]
pub fn solve_resilient(
    session: &SolverSession,
    b: &[f64],
    x0: Option<&[f64]>,
    faults: Option<Arc<dyn FaultHook>>,
    policy: &RecoveryPolicy,
) -> Result<(SessionSolveReport, FaultOutcome), (EngineError, FaultOutcome)> {
    let p = session.config().n_ranks;
    let store = policy.checkpoint.then(|| CheckpointStore::new(p));
    let mut outcome = FaultOutcome::default();
    let mut guess: Option<Vec<f64>> = x0.map(|g| g.to_vec());
    let mut start_iters = 0usize;
    let mut start_cycle = 0u64;
    let t0 = Instant::now();

    let mut attempt = 0usize;
    // A numerical-fallback descent replaces the session with one built a
    // rung down the preconditioner ladder; the original stays borrowed.
    let mut rebuilt: Option<SolverSession> = None;
    let failures = loop {
        let sess: &SolverSession = rebuilt.as_ref().unwrap_or(session);
        let ckpt = store.as_ref().map(|s| CheckpointCtx {
            sink: s,
            start_iters,
            start_cycle,
        });
        match sess.solve_attempt(b, guess.as_deref(), false, faults.clone(), ckpt) {
            Ok((mut rep, _)) => {
                if let Some(bd) = rep.breakdown {
                    outcome.breakdown_kind = Some(bd.kind.key().to_string());
                }
                if policy.precond_fallback && !rep.converged && rep.breakdown.is_some() {
                    if let Some(next) = sess.active_precond().fallback() {
                        let mut down = sess.config().clone();
                        down.precond = next;
                        if let Ok(s2) = SolverSession::build(sess.matrix(), sess.owner(), &down) {
                            parapre_trace::counter(parapre_trace::counters::PRECOND_FALLBACK, 1);
                            outcome.fallbacks += 1;
                            outcome.pivot_shifts += sess.pivot_shifts();
                            // Warm-start the downgraded solve from the
                            // broken-down iterate only when it is usable.
                            if rep.x.iter().all(|v| v.is_finite()) {
                                guess = Some(std::mem::take(&mut rep.x));
                            }
                            rebuilt = Some(s2);
                            continue;
                        }
                    }
                }
                // The report's wall clock should cover the whole ladder,
                // failed attempts and backoff included.
                rep.solve_seconds = t0.elapsed().as_secs_f64();
                outcome.retries = attempt;
                outcome.resumed_iters = start_iters;
                outcome.fallbacks += sess.build_fallbacks();
                outcome.pivot_shifts += sess.pivot_shifts();
                return Ok((rep, outcome));
            }
            Err(fails) => {
                for r in injected_dead_ranks(&fails) {
                    if !outcome.dead_ranks.contains(&r) {
                        outcome.dead_ranks.push(r);
                    }
                }
                if attempt >= policy.retry_budget {
                    break fails;
                }
                parapre_trace::counter(parapre_trace::counters::SOLVE_RETRY, 1);
                if policy.backoff_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(
                        policy.backoff_ms << attempt.min(10),
                    ));
                }
                if let Some(ck) = store.as_ref().and_then(|s| s.latest_consistent()) {
                    guess = Some(session.assemble_global(&ck.x));
                    start_iters = ck.iters;
                    start_cycle = ck.cycle;
                }
                attempt += 1;
            }
        }
    };

    outcome.retries = attempt;
    outcome.dead_ranks.sort_unstable();
    if policy.degrade && !outcome.dead_ranks.is_empty() && outcome.dead_ranks.len() < p {
        // Resume the survivors from the newest consistent checkpoint when
        // one exists; otherwise from the caller's guess.
        if let Some(ck) = store.as_ref().and_then(|s| s.latest_consistent()) {
            guess = Some(session.assemble_global(&ck.x));
        }
        let cfg = session.config();
        match solve_degraded(
            session.matrix(),
            session.owner(),
            p,
            b,
            guess.as_deref(),
            &outcome.dead_ranks,
            cfg.gmres,
            cfg.recv_timeout,
        ) {
            Ok(deg) => {
                outcome.degraded = true;
                outcome.degraded_full_relres = Some(deg.full_relres);
                let rep = SessionSolveReport {
                    x: deg.x,
                    iterations: deg.iterations,
                    converged: deg.converged,
                    final_relres: deg.reduced_relres,
                    // `true_relres` never lies: for a degraded answer it is
                    // the full-system residual, dead subdomain included.
                    true_relres: deg.full_relres,
                    solve_seconds: t0.elapsed().as_secs_f64(),
                    breakdown: None,
                    // Degraded solves run on survivor ranks outside the
                    // session's universe; no per-rank attribution here.
                    load: parapre_metrics::LoadReport::default(),
                };
                return Ok((rep, outcome));
            }
            Err(e) => {
                outcome.error_kind = Some("degraded_failed".into());
                return Err((
                    EngineError::Solve(format!(
                        "{}; degraded fallback: {e}",
                        join_failures(&failures)
                    )),
                    outcome,
                ));
            }
        }
    }

    outcome.error_kind = Some("rank_failure".into());
    Err((EngineError::Solve(join_failures(&failures)), outcome))
}
