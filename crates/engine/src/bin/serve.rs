//! `parapre-serve` — concurrent solve service over a JSONL job stream.
//!
//! Reads one job per line (from `--jobs FILE` or stdin), submits to a
//! bounded [`SolveService`], and prints one JSON result line per job, in
//! submission order, followed by a `#`-prefixed stats line. Exits 0 iff
//! every job ran to completion *and* converged, 2 otherwise.
//!
//! ```text
//! printf '%s\n' \
//!   '{"id":"a","case":"tc1","precond":"schur1","ranks":4}' \
//!   '{"id":"b","case":"tc1","precond":"schur1","ranks":4,"repeat":2}' \
//!   | parapre-serve --pool 2
//! ```
//!
//! Lines with a `"cmd"` key are control requests, answered in stream
//! order after every in-flight job has drained:
//!
//! * `{"cmd":"stats"}` — one JSON line of live service statistics
//!   (job/cache counters, latency quantiles, load gauges);
//! * `{"cmd":"watch"}` — the convergence events that arrived since the
//!   last `watch`, one JSON line each, terminated by a
//!   `{"watch_end":<last_seq>}` line;
//! * `{"cmd":"metrics"}` — the full Prometheus-style text exposition
//!   ([`parapre_metrics::metrics_text`]), terminated by a `# EOF` line.

use parapre_engine::{
    parse_job_line, JobResult, JobTicket, ServiceConfig, SolveService, SubmitError,
};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::time::Instant;

const USAGE: &str = "usage: parapre-serve [--pool N] [--queue N] [--cache N] [--jobs FILE]
  --pool N    worker threads / concurrent jobs (default 4)
  --queue N   bounded queue capacity (default 16)
  --cache N   session-cache capacity (default 4)
  --jobs F    read JSONL jobs from F instead of stdin";

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut jobs_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--pool" => cfg.pool_size = parse_num(&take("--pool"), "--pool"),
            "--queue" => cfg.queue_capacity = parse_num(&take("--queue"), "--queue"),
            "--cache" => cfg.cache_capacity = parse_num(&take("--cache"), "--cache"),
            "--jobs" => jobs_path = Some(take("--jobs")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    let reader: Box<dyn BufRead> = match &jobs_path {
        Some(path) => Box::new(BufReader::new(
            std::fs::File::open(path).unwrap_or_else(|e| die(&format!("{path}: {e}"))),
        )),
        None => Box::new(BufReader::new(std::io::stdin())),
    };

    let service = SolveService::start(cfg).unwrap_or_else(|e| die(&format!("{e}\n{USAGE}")));
    let stdout = std::io::stdout();
    let t0 = Instant::now();
    let mut pending: VecDeque<JobTicket> = VecDeque::new();
    let mut jobs = 0usize;
    let mut ok = 0usize;
    let mut all_converged = true;
    let mut watch_seq = 0u64;

    let finish = |result: JobResult, ok: &mut usize, all_converged: &mut bool| {
        if result.ok {
            *ok += 1;
        }
        *all_converged &= result.ok && result.converged;
        // Flush every line: piped consumers must see whole records as
        // they finish, not whenever the block buffer happens to fill.
        let mut out = stdout.lock();
        writeln!(out, "{}", result.to_json()).expect("stdout");
        out.flush().expect("stdout");
    };

    for (seq, line) in reader.lines().enumerate() {
        let line = line.unwrap_or_else(|e| die(&format!("reading jobs: {e}")));
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(cmd) = command_of(trimmed) {
            // Drain in-flight jobs first so the answer reflects every job
            // submitted before the command — stream order is the contract.
            for ticket in pending.drain(..) {
                finish(ticket.wait(), &mut ok, &mut all_converged);
            }
            serve_command(&cmd, &service, &mut watch_seq);
            continue;
        }
        jobs += 1;
        let job = match parse_job_line(trimmed, seq) {
            Ok(job) => job,
            Err(e) => {
                // Malformed lines become structured `rejected` records, not
                // aborts — the rest of the stream still runs.
                let mut r = JobResult::failed(format!("job-{seq}"), e.to_string());
                r.error_kind = Some("rejected".into());
                finish(r, &mut ok, &mut all_converged);
                continue;
            }
        };
        // Backpressure: when the bounded queue rejects, drain the oldest
        // in-flight result and retry — submission order is preserved. A
        // rejection that cannot be recovered becomes a *structured* result
        // record (`error_kind: "rejected"`) so clients can tell load
        // shedding from solver failure.
        let job_id = job.id.clone();
        let mut job = Some(job);
        loop {
            match service.submit_solve(job.take().expect("job present")) {
                Ok(ticket) => {
                    pending.push_back(ticket);
                    break;
                }
                Err(e @ SubmitError::QueueFull { .. }) => match pending.pop_front() {
                    Some(ticket) => {
                        finish(ticket.wait(), &mut ok, &mut all_converged);
                        job = Some(parse_job_line(trimmed, seq).expect("already parsed once"));
                    }
                    None => {
                        finish(rejected(&job_id, &e), &mut ok, &mut all_converged);
                        break;
                    }
                },
                Err(e @ SubmitError::ShuttingDown) => {
                    finish(rejected(&job_id, &e), &mut ok, &mut all_converged);
                    break;
                }
            }
        }
    }
    for ticket in pending {
        finish(ticket.wait(), &mut ok, &mut all_converged);
    }

    let wall = t0.elapsed().as_secs_f64();
    let stats = service.cache_stats();
    eprintln!(
        "# jobs={jobs} ok={ok} wall={wall:.3}s rate={:.2} jobs/s cache: {} hits {} misses {} evictions",
        if wall > 0.0 { jobs as f64 / wall } else { 0.0 },
        stats.hits,
        stats.misses,
        stats.evictions,
    );
    service.shutdown();
    if ok == jobs && all_converged {
        std::process::exit(0);
    }
    std::process::exit(2);
}

/// The `"cmd"` value of a control line, `None` for ordinary job lines
/// (including unparsable ones — those flow to the job path's structured
/// rejection).
fn command_of(line: &str) -> Option<String> {
    use parapre_trace::flatjson::{parse_flat_object, JsonValue};
    let fields = parse_flat_object(line).ok()?;
    fields
        .get("cmd")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
}

/// Answers one control request on stdout.
fn serve_command(cmd: &str, service: &SolveService, watch_seq: &mut u64) {
    let stdout = std::io::stdout();
    match cmd {
        "stats" => {
            let mut out = stdout.lock();
            writeln!(out, "{}", service.stats_json()).expect("stdout");
            out.flush().expect("stdout");
        }
        "watch" => {
            let events = parapre_metrics::conv_since(*watch_seq);
            let mut out = stdout.lock();
            for ev in &events {
                writeln!(out, "{}", ev.to_json()).expect("stdout");
                *watch_seq = ev.seq;
            }
            writeln!(out, "{{\"watch_end\":{}}}", *watch_seq).expect("stdout");
            out.flush().expect("stdout");
        }
        "metrics" => {
            let mut out = stdout.lock();
            write!(out, "{}", parapre_metrics::metrics_text()).expect("stdout");
            writeln!(out, "# EOF").expect("stdout");
            out.flush().expect("stdout");
        }
        other => {
            let mut out = stdout.lock();
            writeln!(
                out,
                "{{\"ok\":false,\"error\":\"unknown cmd {}\",\"error_kind\":\"rejected\"}}",
                parapre_trace::flatjson::escape(other)
            )
            .expect("stdout");
            out.flush().expect("stdout");
        }
    }
}

/// A structured result record for a job the service refused to run.
fn rejected(id: &str, e: &SubmitError) -> JobResult {
    let mut r = JobResult::failed(id, e.to_string());
    r.error_kind = Some("rejected".into());
    r
}

fn parse_num(s: &str, name: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => die(&format!("{name} needs a positive integer, got {s:?}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("parapre-serve: {msg}");
    std::process::exit(1);
}
