//! # parapre-engine
//!
//! The serving layer on top of the reproduction: cached solver sessions, a
//! keyed LRU session cache, and a bounded concurrent solve service.
//!
//! The experiment runner (`parapre-core`) rebuilds partition, distribution,
//! and preconditioner factors for every solve and runs one job at a time —
//! faithful to the paper's tables, wasteful for the paper's *workloads*
//! (repeated solves: time stepping, parameter sweeps, request streams).
//! This crate separates setup from solve:
//!
//! * [`SolverSession`] — partition + distribute + factor once, then serve
//!   any number of `solve(rhs)` calls against the frozen per-rank state;
//! * [`SessionCache`] — sessions keyed by (matrix fingerprint, solver
//!   config) with LRU eviction, single-flight builds, and hit/miss
//!   counters surfaced through `parapre-trace`;
//! * [`SolveService`] — a worker pool running independent jobs over a
//!   bounded set of mpisim universes (threads ≤ `P × pool_size`), with a
//!   bounded queue and explicit [`SubmitError::QueueFull`] backpressure;
//! * [`march_heat`] — the TC4 time-stepping driver: `N` implicit heat
//!   steps against one factorization, per-step iteration counts reported;
//! * `parapre-serve` — a CLI accepting a JSONL job stream (builtin cases
//!   or Matrix Market files) and emitting JSONL results plus throughput
//!   statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod cache;
pub mod elastic;
pub mod jobs;
pub mod resilient;
pub mod service;
pub mod session;
pub mod timestep;

pub use autotune::{
    AutoTuner, TuneDecision, TuneLoad, TuneRecord, TuneSample, TunerStats, AUTO_CANDIDATES,
    MAX_STATE_SOLVE_US,
};
pub use cache::{CacheStats, SessionCache, SessionKey};
pub use elastic::{RebalanceManager, RebalanceRecord};
pub use jobs::{
    batch_rhs, parse_job_line, problem_key, resolve_problem, resolve_problem_with, JobResult,
    ProblemSpec, ResolvedProblem, RhsSpec, SolveJob, MAX_JOB_LINE_BYTES,
};
pub use resilient::{solve_resilient, FaultOutcome, RecoveryPolicy};
pub use service::{
    ConfigError, Job, JobTicket, MatrixStore, MatrixStoreStats, ServiceConfig, SolveService,
    SubmitError,
};
pub use session::{
    matrix_graph, BatchOptions, BatchSolveReport, MigrationReport, SessionConfig,
    SessionSolveReport, SolverSession,
};
pub use timestep::{march_heat, StepReport, TimestepConfig, TimestepReport};

/// Errors of the serving layer.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// Session construction failed (rank failure messages, `;`-joined).
    Setup(String),
    /// A distributed solve failed (deadlock diagnostics or rank panics).
    Solve(String),
    /// A job specification or its inputs were invalid.
    BadJob(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Setup(m) => write!(f, "session setup failed: {m}"),
            EngineError::Solve(m) => write!(f, "distributed solve failed: {m}"),
            EngineError::BadJob(m) => write!(f, "bad job: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}
