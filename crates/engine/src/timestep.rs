//! Time-stepping driver: march TC4's heat equation `N` implicit steps
//! against **one** cached factorization.
//!
//! The system matrix `M + Δt·K` of the implicit Euler step never changes,
//! so the session factors it once and every step only rebuilds the
//! right-hand side `M uˡ⁻¹` (with the Dirichlet sweep) and solves — the
//! setup/solve separation the paper's single-step TC4 experiment implies
//! but never exercises. Per-step iteration counts are reported; solves are
//! seeded with the previous state (paper §4.3 seeds with `u⁰`).

use crate::session::{SessionConfig, SolverSession};
use crate::EngineError;
use parapre_fem::heat::HeatMarch;
use parapre_grid::structured::unit_cube;
use parapre_grid::Adjacency;
use parapre_partition::partition_graph;

/// Parameters of a marching run.
#[derive(Debug, Clone)]
pub struct TimestepConfig {
    /// Grid extent per direction (the mesh is `n × n × n`).
    pub extent: usize,
    /// Number of implicit steps.
    pub steps: usize,
    /// Time step Δt.
    pub dt: f64,
    /// Solver session configuration.
    pub session: SessionConfig,
    /// Trace every solve and count `setup.factor` spans (the zero-refactor
    /// assertion); adds recorder overhead per step.
    pub trace: bool,
}

/// One marched step's outcome.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// 1-based step number.
    pub step: usize,
    /// Outer FGMRES iterations.
    pub iterations: usize,
    /// Final recursive relative residual.
    pub final_relres: f64,
    /// True relative residual of the step's solve.
    pub true_relres: f64,
    /// Solve wall time.
    pub solve_seconds: f64,
    /// `max |u|` after the step (diffusion must decay it).
    pub amplitude: f64,
}

/// The whole march.
#[derive(Debug, Clone)]
pub struct TimestepReport {
    /// Global unknowns.
    pub n_unknowns: usize,
    /// One-off setup wall time (partition + distribute + factor).
    pub setup_seconds: f64,
    /// Per-step outcomes, in order.
    pub steps: Vec<StepReport>,
    /// Total `setup.factor` spans observed during the marched solves —
    /// **must be 0**: all factorization work happened in setup. Only
    /// counted when [`TimestepConfig::trace`] is set.
    pub factor_spans_during_steps: u64,
}

/// Marches the heat equation. Fails (rather than panicking) if any step's
/// distributed solve dies.
pub fn march_heat(cfg: &TimestepConfig) -> Result<TimestepReport, EngineError> {
    let mesh = unit_cube(cfg.extent, cfg.extent, cfg.extent);
    let march = HeatMarch::new(&mesh, cfg.dt);
    let adjacency = Adjacency::from_elements(mesh.n_nodes(), mesh.tets.iter().map(|t| t.to_vec()));
    let part = partition_graph(&adjacency, cfg.session.n_ranks, cfg.session.partition_seed);
    let session = SolverSession::build(&march.a, &part.owner, &cfg.session)?;

    let mut u = HeatMarch::initial_state(&mesh);
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut factor_spans = 0u64;
    for step in 1..=cfg.steps {
        let b = march.rhs(&u);
        let (rep, traces) = if cfg.trace {
            session.solve_traced(&b, Some(&u))?
        } else {
            let rep = session.solve_with_guess(&b, &u)?;
            (rep, Vec::new())
        };
        for tr in &traces {
            if let Some(phase) = tr.summary().phase(parapre_trace::phase::FACTOR) {
                factor_spans += phase.calls;
            }
        }
        u = rep.x.clone();
        let amplitude = u.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        steps.push(StepReport {
            step,
            iterations: rep.iterations,
            final_relres: rep.final_relres,
            true_relres: rep.true_relres,
            solve_seconds: rep.solve_seconds,
            amplitude,
        });
    }
    Ok(TimestepReport {
        n_unknowns: session.n_unknowns(),
        setup_seconds: session.setup_seconds(),
        steps,
        factor_spans_during_steps: factor_spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapre_core::PrecondKind;

    #[test]
    fn marching_reuses_one_factorization_and_decays() {
        let cfg = TimestepConfig {
            extent: 5,
            steps: 4,
            dt: 0.05,
            session: SessionConfig::paper(PrecondKind::Schur1, 2),
            trace: true,
        };
        let report = march_heat(&cfg).expect("march");
        assert_eq!(report.steps.len(), 4);
        assert_eq!(
            report.factor_spans_during_steps, 0,
            "steps after setup must not refactor"
        );
        for w in report.steps.windows(2) {
            assert!(
                w[1].amplitude < w[0].amplitude,
                "diffusion must decay the mode: {} -> {}",
                w[0].amplitude,
                w[1].amplitude
            );
        }
        for s in &report.steps {
            assert!(s.iterations > 0);
            assert!(s.true_relres <= 1e-5, "step {}: {}", s.step, s.true_relres);
        }
    }
}
