//! The JSONL job protocol of `parapre-serve` and the solve-job resolution
//! shared with the scheduler.
//!
//! One job per line, flat JSON. Builtin-case job:
//!
//! ```json
//! {"id":"j1","case":"tc1","size":"tiny","precond":"schur1","ranks":4,"repeat":2}
//! ```
//!
//! Matrix Market job (`rhs` is `ones`, `rowsum`, or a vector-file path):
//!
//! ```json
//! {"id":"j2","mtx":"path/to/a.mtx","rhs":"ones","precond":"block2","ranks":2}
//! ```
//!
//! Recognized keys: `id`, `case` *or* `mtx`, `n` (explicit grid extent,
//! overrides `size`), `size` (`tiny`/`default`/`full`), `precond` (one of
//! [`VALID_PRECONDS`]; `"schurml"` additionally honours `levels` and
//! `rank`), `ranks`, `scheme`, `seed`, `repeat`, `rhs`, `tol`, `maxit`,
//! `restart`. Resilience
//! keys: `retries`, `backoff_ms`, `degrade`, `checkpoint` (recovery
//! policy), `fallback` (numerical-safety ladder, default on);
//! `fault_seed`, `drop_prob`, `delay_prob`, `delay_us`,
//! `kill_rank`, `kill_op` (deterministic fault injection — chaos jobs);
//! `deadline_ms` (wall-clock budget from submission — expired jobs come
//! back as structured `timeout` records instead of occupying a worker).
//! Results come back one flat-ish JSON line per job (the `iterations` and
//! `dead_ranks` arrays are the only nesting).

use crate::resilient::RecoveryPolicy;
use crate::session::{partition_matrix, SessionConfig};
use crate::EngineError;
use parapre_core::{build_case, build_case_sized, CaseId, CaseSize, PartitionScheme, PrecondKind};
use parapre_core::{partition_case_with, AssembledCase};
use parapre_resilience::{FaultConfig, RankOp};
use parapre_sparse::Csr;
use parapre_trace::flatjson::{self, JsonValue};
use std::path::PathBuf;

/// Where a job's matrix comes from.
#[derive(Debug, Clone)]
pub enum ProblemSpec {
    /// One of the paper's assembled test cases.
    Case {
        /// Which case.
        id: CaseId,
        /// Grid-size preset (used when `extent` is `None`).
        size: CaseSize,
        /// Explicit grid extent overriding the preset.
        extent: Option<usize>,
    },
    /// A Matrix Market file.
    Mtx {
        /// Path to the `.mtx` file.
        path: PathBuf,
    },
    /// A matrix previously registered with the service by content
    /// fingerprint (`parapre-netd` ingest: clients upload once, then
    /// submit `{"fp":"<hex>"}` jobs without re-sending the bytes).
    Registered {
        /// The [`Csr::fingerprint`] of the registered matrix.
        fp: u64,
    },
}

/// Where a job's right-hand side comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RhsSpec {
    /// The case's natural (assembled) right-hand side; falls back to
    /// [`RhsSpec::Ones`] for Matrix Market problems.
    Natural,
    /// All ones.
    Ones,
    /// Row sums of the matrix (makes `x = 1` the exact solution).
    RowSum,
    /// A vector file (plain text or Matrix Market `array`).
    File(PathBuf),
}

/// One solve request.
#[derive(Debug, Clone)]
pub struct SolveJob {
    /// Caller-chosen identifier echoed in the result.
    pub id: String,
    /// Matrix source.
    pub problem: ProblemSpec,
    /// Right-hand-side source.
    pub rhs: RhsSpec,
    /// How many times to solve (identical RHS; exercises the cached
    /// factors on every repeat after the first).
    pub repeat: usize,
    /// Number of right-hand sides solved through the batched multi-RHS
    /// path (one universe launch, shared factors). `1` uses the ordinary
    /// resilient per-solve path; `k > 1` derives `k` deterministic RHS
    /// variants from the job's RHS spec.
    pub batch: usize,
    /// `"precond":"auto"` — the service's autotuner picks the rung per
    /// matrix fingerprint; `session.precond` holds the pre-selection
    /// default until then.
    pub auto_precond: bool,
    /// Session configuration (preconditioner, ranks, tolerances …).
    pub session: SessionConfig,
    /// Retry/checkpoint/degrade behavior for this job.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault injection plan (chaos jobs only).
    pub fault: Option<FaultConfig>,
    /// Wall-clock budget in milliseconds, measured from submission. A job
    /// still queued past its deadline is rejected with a structured
    /// `timeout` record instead of occupying a worker; a multi-repeat job
    /// re-checks between repeats and stops early the same way.
    pub deadline_ms: Option<u64>,
}

/// The outcome of one job, serializable as a JSONL result line.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's identifier.
    pub id: String,
    /// Whether the job ran to completion (solves may still not converge —
    /// see [`JobResult::converged`]).
    pub ok: bool,
    /// Failure message when `ok` is false.
    pub error: Option<String>,
    /// Whether every solve met the residual target.
    pub converged: bool,
    /// Outer iteration count of each repeat.
    pub iterations: Vec<usize>,
    /// Final recursive relative residual of the last solve.
    pub final_relres: f64,
    /// Final true relative residual ‖b−Ax‖/‖b‖ of the last solve.
    pub true_relres: f64,
    /// Whether the session came from cache.
    pub cache_hit: bool,
    /// Session setup wall time attributed to this job (0 on cache hits).
    pub setup_seconds: f64,
    /// Total solve wall time across repeats.
    pub solve_seconds: f64,
    /// Milliseconds the job waited in the service queue before a worker
    /// picked it up (0 when run outside a service).
    pub queue_ms: f64,
    /// Milliseconds of session build attributed to this job — the
    /// millisecond view of `setup_seconds` (0 on cache hits).
    pub build_ms: f64,
    /// Milliseconds of solve wall time across repeats — the millisecond
    /// view of `solve_seconds`.
    pub solve_ms: f64,
    /// Global problem size.
    pub n_unknowns: usize,
    /// Failed attempts absorbed by retries, summed over repeats.
    pub retries: usize,
    /// At least one repeat was answered by the degraded (reduced-system)
    /// path — the solution is partial; see `true_relres`.
    pub degraded: bool,
    /// Union of ranks declared dead across repeats.
    pub dead_ranks: Vec<usize>,
    /// Classification of the failure (`"rank_failure"`, `"panic"`,
    /// `"rejected"`, ...) when one occurred.
    pub error_kind: Option<String>,
    /// Diagonal-shift factorization retries, summed over ranks and repeats.
    pub pivot_shifts: usize,
    /// Preconditioner-ladder rungs descended (build- plus solve-time),
    /// summed over repeats.
    pub fallbacks: usize,
    /// Kind key of the last typed numerical breakdown observed
    /// (`"stagnation"`, `"non_finite"`, ...), recovered-from or not.
    pub breakdown_kind: Option<String>,
    /// Right-hand sides solved per repeat (1 on the non-batched path).
    pub batch: usize,
    /// Key of the preconditioner rung that actually served the job —
    /// reported for every job, load-bearing for `"precond":"auto"` ones.
    pub precond_used: Option<String>,
    /// Whether the rung was chosen by the autotuner.
    pub auto: bool,
}

impl JobResult {
    /// A result for a job that failed before (or while) solving.
    pub fn failed(id: impl Into<String>, error: impl Into<String>) -> JobResult {
        JobResult {
            id: id.into(),
            ok: false,
            error: Some(error.into()),
            converged: false,
            iterations: Vec::new(),
            final_relres: f64::NAN,
            true_relres: f64::NAN,
            cache_hit: false,
            setup_seconds: 0.0,
            solve_seconds: 0.0,
            queue_ms: 0.0,
            build_ms: 0.0,
            solve_ms: 0.0,
            n_unknowns: 0,
            retries: 0,
            degraded: false,
            dead_ranks: Vec::new(),
            error_kind: None,
            pivot_shifts: 0,
            fallbacks: 0,
            breakdown_kind: None,
            batch: 1,
            precond_used: None,
            auto: false,
        }
    }

    /// Serializes as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let iters: Vec<String> = self.iterations.iter().map(|i| i.to_string()).collect();
        let mut out = format!(
            "{{\"id\":\"{}\",\"ok\":{},\"converged\":{},\"iterations\":[{}],\
             \"final_relres\":{},\"true_relres\":{},\"cache_hit\":{},\
             \"setup_seconds\":{},\"solve_seconds\":{},\
             \"queue_ms\":{},\"build_ms\":{},\"solve_ms\":{},\"n\":{}",
            flatjson::escape(&self.id),
            self.ok,
            self.converged,
            iters.join(","),
            flatjson::json_f64(self.final_relres),
            flatjson::json_f64(self.true_relres),
            self.cache_hit,
            flatjson::json_f64(self.setup_seconds),
            flatjson::json_f64(self.solve_seconds),
            flatjson::json_f64(self.queue_ms),
            flatjson::json_f64(self.build_ms),
            flatjson::json_f64(self.solve_ms),
            self.n_unknowns,
        );
        if self.retries > 0 {
            out.push_str(&format!(",\"retries\":{}", self.retries));
        }
        if self.degraded {
            out.push_str(",\"degraded\":true");
        }
        if !self.dead_ranks.is_empty() {
            let ranks: Vec<String> = self.dead_ranks.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!(",\"dead_ranks\":[{}]", ranks.join(",")));
        }
        if self.pivot_shifts > 0 {
            out.push_str(&format!(",\"pivot_shifts\":{}", self.pivot_shifts));
        }
        if self.fallbacks > 0 {
            out.push_str(&format!(",\"fallbacks\":{}", self.fallbacks));
        }
        if let Some(kind) = &self.breakdown_kind {
            out.push_str(&format!(
                ",\"breakdown_kind\":\"{}\"",
                flatjson::escape(kind)
            ));
        }
        if self.batch > 1 {
            out.push_str(&format!(",\"batch\":{}", self.batch));
        }
        if let Some(p) = &self.precond_used {
            out.push_str(&format!(",\"precond\":\"{}\"", flatjson::escape(p)));
        }
        if self.auto {
            out.push_str(",\"auto\":true");
        }
        if let Some(kind) = &self.error_kind {
            out.push_str(&format!(",\"error_kind\":\"{}\"", flatjson::escape(kind)));
        }
        if let Some(e) = &self.error {
            out.push_str(&format!(",\"error\":\"{}\"", flatjson::escape(e)));
        }
        out.push('}');
        out
    }
}

/// The full set of `precond` values a job line may carry — spelled out in
/// the rejection message so a misspelled client learns the valid set from
/// the structured `"rejected"` record instead of a bare "unknown" error.
pub const VALID_PRECONDS: &str = "block1, block2, schur1, schur2, schurml, overlap, jacobi, auto";

/// Hard ceiling on one job line. Anything larger is rejected before the
/// parser touches it — a mis-framed client must not make the service
/// buffer or scan unbounded garbage. (Matrices travel through the `put`
/// ingest path, never inline in a job line.)
pub const MAX_JOB_LINE_BYTES: usize = 1 << 20;

/// Parses one JSONL job line. `seq` numbers auto-generated ids
/// (`job-<seq>`) for lines without an `id`.
pub fn parse_job_line(line: &str, seq: usize) -> Result<SolveJob, EngineError> {
    if line.len() > MAX_JOB_LINE_BYTES {
        return Err(EngineError::BadJob(format!(
            "job line of {} bytes exceeds the {} byte limit",
            line.len(),
            MAX_JOB_LINE_BYTES
        )));
    }
    let fields =
        flatjson::parse_flat_object(line).map_err(|e| EngineError::BadJob(e.to_string()))?;
    let get_str = |k: &str| fields.get(k).and_then(JsonValue::as_str);
    let get_u = |k: &str| fields.get(k).and_then(JsonValue::as_u64);
    let get_f = |k: &str| fields.get(k).and_then(JsonValue::as_f64);

    let id = get_str("id")
        .map(str::to_string)
        .unwrap_or_else(|| format!("job-{seq}"));

    let problem = match (get_str("case"), get_str("mtx"), get_str("fp")) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) | (_, Some(_), Some(_)) => {
            return Err(EngineError::BadJob(
                "give exactly one of `case`, `mtx`, `fp`".into(),
            ))
        }
        (None, None, Some(hex)) => {
            let fp = u64::from_str_radix(hex.trim_start_matches("0x"), 16)
                .map_err(|_| EngineError::BadJob(format!("bad fingerprint {hex:?}")))?;
            ProblemSpec::Registered { fp }
        }
        (Some(c), None, None) => {
            let case_id = CaseId::parse(c)
                .ok_or_else(|| EngineError::BadJob(format!("unknown case {c:?}")))?;
            let size = match get_str("size") {
                Some(s) => CaseSize::parse(s)
                    .ok_or_else(|| EngineError::BadJob(format!("unknown size {s:?}")))?,
                None => CaseSize::Tiny,
            };
            ProblemSpec::Case {
                id: case_id,
                size,
                extent: get_u("n").map(|n| n as usize),
            }
        }
        (None, Some(path), None) => ProblemSpec::Mtx {
            path: PathBuf::from(path),
        },
        (None, None, None) => {
            return Err(EngineError::BadJob("missing `case`, `mtx`, or `fp`".into()))
        }
    };

    let precond_str = get_str("precond").unwrap_or("schur1");
    let auto_precond = precond_str.eq_ignore_ascii_case("auto");
    let mut precond = if auto_precond {
        // Pre-selection placeholder; the service's autotuner replaces it
        // once the matrix fingerprint is known.
        PrecondKind::Schur1
    } else {
        PrecondKind::parse(precond_str).ok_or_else(|| {
            EngineError::BadJob(format!(
                "unknown precond {precond_str:?}; valid: {VALID_PRECONDS}"
            ))
        })?
    };
    // SchurML knobs: `levels`/`rank` refine the parsed default variant.
    if let PrecondKind::SchurML { levels, rank } = precond {
        precond = PrecondKind::SchurML {
            levels: get_u("levels").map_or(levels, |v| v as usize),
            rank: get_u("rank").map_or(rank, |v| v as usize),
        };
    }
    let n_ranks = get_u("ranks").unwrap_or(4) as usize;
    if n_ranks == 0 {
        return Err(EngineError::BadJob("ranks must be >= 1".into()));
    }
    let mut session = SessionConfig::paper(precond, n_ranks);
    if let Some(s) = get_str("scheme") {
        session.scheme = PartitionScheme::parse(s)
            .ok_or_else(|| EngineError::BadJob(format!("unknown scheme {s:?}")))?;
    }
    if let Some(seed) = get_u("seed") {
        session.partition_seed = seed;
    }
    if let Some(tol) = get_f("tol") {
        session.gmres.rel_tol = tol;
    }
    if let Some(maxit) = get_u("maxit") {
        session.gmres.max_iters = maxit as usize;
    }
    if let Some(restart) = get_u("restart") {
        session.gmres.restart = restart as usize;
    }

    let rhs = match get_str("rhs") {
        None | Some("natural") => RhsSpec::Natural,
        Some("ones") => RhsSpec::Ones,
        Some("rowsum") => RhsSpec::RowSum,
        Some(path) => RhsSpec::File(PathBuf::from(path)),
    };

    let get_bool = |k: &str| fields.get(k).and_then(JsonValue::as_bool);
    let mut recovery = RecoveryPolicy::default();
    if let Some(r) = get_u("retries") {
        recovery.retry_budget = r as usize;
    }
    if let Some(ms) = get_u("backoff_ms") {
        recovery.backoff_ms = ms;
    }
    if let Some(d) = get_bool("degrade") {
        recovery.degrade = d;
    }
    if let Some(c) = get_bool("checkpoint") {
        recovery.checkpoint = c;
    }
    if let Some(f) = get_bool("fallback") {
        session.fallback = f;
        recovery.precond_fallback = f;
    }

    let has_fault = ["fault_seed", "drop_prob", "delay_prob", "kill_rank"]
        .iter()
        .any(|k| fields.contains_key(*k));
    let fault = has_fault.then(|| {
        let mut f = FaultConfig {
            seed: get_u("fault_seed").unwrap_or(0),
            drop_prob: get_f("drop_prob").unwrap_or(0.0),
            delay_prob: get_f("delay_prob").unwrap_or(0.0),
            ..Default::default()
        };
        if let Some(us) = get_u("delay_us") {
            f.delay_us = us;
        }
        if let Some(rank) = get_u("kill_rank") {
            f.kill.push(RankOp {
                rank: rank as usize,
                op: get_u("kill_op").unwrap_or(0),
            });
        }
        f
    });

    let batch = get_u("batch").unwrap_or(1).max(1) as usize;
    if batch > 1 && fault.is_some() {
        return Err(EngineError::BadJob(
            "batched jobs do not support fault injection".into(),
        ));
    }

    let deadline_ms = match fields.get("deadline_ms") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(ms) if ms > 0 => Some(ms),
            _ => {
                return Err(EngineError::BadJob(
                    "deadline_ms must be a positive integer of milliseconds".into(),
                ))
            }
        },
    };

    Ok(SolveJob {
        id,
        problem,
        rhs,
        repeat: get_u("repeat").unwrap_or(1).max(1) as usize,
        batch,
        auto_precond,
        session,
        recovery,
        fault,
        deadline_ms,
    })
}

/// Cache identity of a job's *resolved problem* (assembled matrix,
/// partition, rhs). Two jobs share a resolution iff every input to
/// [`resolve_problem`] matches. File-backed problems (`mtx` / rhs files)
/// are keyed by path, not content: a service caches what it read first.
pub fn problem_key(job: &SolveJob) -> String {
    format!(
        "{:?}|{:?}|{}|{}|P{}",
        job.problem,
        job.rhs,
        job.session.scheme.key(),
        job.session.partition_seed,
        job.session.n_ranks
    )
}

/// A job's matrix, owner map, right-hand side, and optional initial guess,
/// ready for [`SolverSession::build`](crate::SolverSession::build).
pub struct ResolvedProblem {
    /// The (layout-ready) global matrix.
    pub a: Csr,
    /// Per-unknown owning rank.
    pub owner: Vec<u32>,
    /// Right-hand side.
    pub b: Vec<f64>,
    /// Initial guess (the paper's per-case guess for builtin cases).
    pub x0: Option<Vec<f64>>,
}

/// Materializes a job's problem: assembles the case or loads the file,
/// partitions, and produces the right-hand side. Fingerprint-referencing
/// jobs ([`ProblemSpec::Registered`]) need a store —
/// use [`resolve_problem_with`].
pub fn resolve_problem(job: &SolveJob) -> Result<ResolvedProblem, EngineError> {
    resolve_problem_with(job, &|_| None)
}

/// [`resolve_problem`] with a fingerprint → matrix lookup for
/// [`ProblemSpec::Registered`] jobs (the service passes its
/// [`MatrixStore`](crate::service::MatrixStore)).
pub fn resolve_problem_with(
    job: &SolveJob,
    lookup: &dyn Fn(u64) -> Option<std::sync::Arc<Csr>>,
) -> Result<ResolvedProblem, EngineError> {
    match &job.problem {
        ProblemSpec::Registered { fp } => {
            let a = lookup(*fp).ok_or_else(|| {
                EngineError::BadJob(format!("fingerprint {fp:016x} is not registered"))
            })?;
            let (a_sym, owner) =
                partition_matrix(&a, job.session.n_ranks, job.session.partition_seed);
            let b = rhs_for(&job.rhs, &a_sym, None)?;
            Ok(ResolvedProblem {
                a: a_sym,
                owner,
                b,
                x0: None,
            })
        }
        ProblemSpec::Case { id, size, extent } => {
            let case: AssembledCase = match extent {
                Some(n) => build_case_sized(*id, *n),
                None => build_case(*id, *size),
            };
            let node_part = partition_case_with(
                &case,
                job.session.scheme,
                job.session.n_ranks,
                job.session.partition_seed,
            );
            let owner = case.dof_owner(&node_part.owner);
            let b = rhs_for(&job.rhs, &case.sys.a, Some(&case.sys.b))?;
            Ok(ResolvedProblem {
                a: case.sys.a,
                owner,
                b,
                x0: Some(case.x0),
            })
        }
        ProblemSpec::Mtx { path } => {
            let a = parapre_sparse::io::load_mtx(path)
                .map_err(|e| EngineError::BadJob(format!("{}: {e:?}", path.display())))?;
            if a.n_rows() != a.n_cols() {
                return Err(EngineError::BadJob("matrix must be square".into()));
            }
            let (a_sym, owner) =
                partition_matrix(&a, job.session.n_ranks, job.session.partition_seed);
            let b = rhs_for(&job.rhs, &a_sym, None)?;
            Ok(ResolvedProblem {
                a: a_sym,
                owner,
                b,
                x0: None,
            })
        }
    }
}

/// Derives `k` deterministic right-hand-side variants from a base vector
/// for batched jobs: variant 0 is the base itself, variant `j` modulates
/// it with a smooth index-dependent factor, so the batch exercises `k`
/// genuinely different solves of comparable difficulty (a scaled RHS
/// alone would converge identically by linearity).
pub fn batch_rhs(base: &[f64], k: usize) -> Vec<Vec<f64>> {
    (0..k.max(1))
        .map(|j| {
            if j == 0 {
                return base.to_vec();
            }
            let freq = j as f64;
            base.iter()
                .enumerate()
                .map(|(i, &v)| {
                    let phase = freq * (i as f64 + 1.0) / (base.len() as f64 + 1.0);
                    v * (1.0 + 0.25 * (std::f64::consts::PI * phase).sin())
                })
                .collect()
        })
        .collect()
}

fn rhs_for(spec: &RhsSpec, a: &Csr, natural: Option<&[f64]>) -> Result<Vec<f64>, EngineError> {
    let n = a.n_rows();
    let b = match spec {
        RhsSpec::Natural => match natural {
            Some(b) => b.to_vec(),
            None => vec![1.0; n],
        },
        RhsSpec::Ones => vec![1.0; n],
        RhsSpec::RowSum => a.mul_vec(&vec![1.0; n]),
        RhsSpec::File(path) => {
            let b = parapre_sparse::io::load_vec(path)
                .map_err(|e| EngineError::BadJob(format!("{}: {e:?}", path.display())))?;
            if b.len() != n {
                return Err(EngineError::BadJob(format!(
                    "rhs length {} != matrix size {n}",
                    b.len()
                )));
            }
            b
        }
    };
    // A single NaN/Inf in the right-hand side poisons every inner product
    // of the solve — reject the job up front with a structured error.
    if let Some(i) = b.iter().position(|v| !v.is_finite()) {
        return Err(EngineError::BadJob(format!(
            "rhs entry {i} is not finite ({})",
            b[i]
        )));
    }
    Ok(b)
}
