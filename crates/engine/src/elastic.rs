//! Engine wiring for elastic rank topology: watches cached sessions'
//! load attribution, runs the [`RebalancePolicy`], and swaps migrated
//! sessions into the [`SessionCache`] under their new topology-tagged key.
//!
//! The policy and migration *planning* live in
//! `parapre_resilience::elastic` (engine-agnostic); this module owns the
//! stateful glue: one policy instance per cached session (streaks and
//! cooldowns survive across passes), partition surgery over the session's
//! matrix graph, the call to [`SolverSession::migrate`], and the cache
//! swap that retires the superseded topology.

use crate::cache::{SessionCache, SessionKey};
use crate::session::{matrix_graph, SolverSession};
use parapre_partition::Partition;
use parapre_resilience::elastic::{
    apply_decision, plan_migration, RebalanceConfig, RebalanceDecision, RebalancePolicy,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// KL sweeps per online refinement. Enough for a boundary to travel
/// across a badly skewed subdomain; refinement exits early once a sweep
/// moves nothing.
const REFINE_PASSES: usize = 64;

/// What one rebalance pass did (or declined to do) to one cached session.
#[derive(Debug, Clone)]
pub struct RebalanceRecord {
    /// Matrix fingerprint of the session.
    pub fingerprint: u64,
    /// The policy's decision for this pass.
    pub decision: String,
    /// `rebalanced`, `stay`, `no_load`, `no_change`, or `abort:<why>`.
    pub outcome: String,
    /// Rank count before.
    pub old_p: usize,
    /// Rank count after (equals `old_p` unless a resize landed).
    pub new_p: usize,
    /// Subdomain factors carried over verbatim (0 when nothing migrated).
    pub reused_ranks: usize,
    /// Vertices whose owner changed (0 when nothing migrated).
    pub moved_rows: usize,
    /// Migration wall time in seconds (0 when nothing migrated).
    pub migrate_seconds: f64,
}

impl RebalanceRecord {
    /// One JSONL line for the control-plane response.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"fp\":\"{:016x}\",\"decision\":\"{}\",\"outcome\":\"{}\",\"old_p\":{},\
             \"new_p\":{},\"reused_ranks\":{},\"moved_rows\":{},\"migrate_us\":{}}}",
            self.fingerprint,
            self.decision,
            self.outcome,
            self.old_p,
            self.new_p,
            self.reused_ranks,
            self.moved_rows,
            (self.migrate_seconds * 1e6) as u64
        )
    }
}

/// Per-cache rebalance state: one [`RebalancePolicy`] per resident
/// session key, so sustain streaks and cooldowns persist across passes
/// and do not bleed between sessions.
pub struct RebalanceManager {
    cfg: RebalanceConfig,
    policies: Mutex<HashMap<SessionKey, RebalancePolicy>>,
}

impl RebalanceManager {
    /// A manager applying `cfg` to every session it watches.
    pub fn new(cfg: RebalanceConfig) -> RebalanceManager {
        RebalanceManager {
            cfg,
            policies: Mutex::new(HashMap::new()),
        }
    }

    /// The policy knobs this manager applies.
    pub fn config(&self) -> &RebalanceConfig {
        &self.cfg
    }

    /// Runs one rebalance pass over every resident session.
    ///
    /// With `force: false` (the auto-rebalance path) each session's
    /// persistent policy ingests its latest [`SolverSession::last_load`]
    /// and only a sustained signal triggers a migration. With
    /// `force: true` (the `{"cmd":"rebalance"}` control verb) a one-shot
    /// policy with `sustain: 1, cooldown: 0` decides on the latest
    /// observation alone.
    ///
    /// A successful migration inserts the new session under its
    /// topology-tagged key and retires the old entry; any abort leaves
    /// the old entry serving and reports the reason.
    pub fn pass(&self, cache: &SessionCache, force: bool) -> Vec<RebalanceRecord> {
        let mut records = Vec::new();
        for (key, session) in cache.entries() {
            records.push(self.rebalance_one(cache, &key, &session, force));
        }
        // Drop policy state for keys no longer resident.
        let live: Vec<SessionKey> = cache.entries().into_iter().map(|(k, _)| k).collect();
        self.policies
            .lock()
            .expect("policy lock")
            .retain(|k, _| live.contains(k));
        records
    }

    fn rebalance_one(
        &self,
        cache: &SessionCache,
        key: &SessionKey,
        session: &Arc<SolverSession>,
        force: bool,
    ) -> RebalanceRecord {
        let p = session.config().n_ranks;
        let mut record = RebalanceRecord {
            fingerprint: session.fingerprint(),
            decision: "stay".into(),
            outcome: "stay".into(),
            old_p: p,
            new_p: p,
            reused_ranks: 0,
            moved_rows: 0,
            migrate_seconds: 0.0,
        };
        let Some(load) = session.last_load() else {
            record.outcome = "no_load".into();
            return record;
        };
        let decision = if force {
            let mut once = RebalancePolicy::new(RebalanceConfig {
                sustain: 1,
                cooldown: 0,
                ..self.cfg.clone()
            });
            once.observe(&load)
        } else {
            let mut policies = self.policies.lock().expect("policy lock");
            policies
                .entry(key.clone())
                .or_insert_with(|| RebalancePolicy::new(self.cfg.clone()))
                .observe(&load)
        };
        record.decision = match decision {
            RebalanceDecision::Stay => "stay".into(),
            RebalanceDecision::Refine => "refine".into(),
            RebalanceDecision::Resize(q) => format!("resize:{q}"),
        };
        if decision == RebalanceDecision::Stay {
            return record;
        }
        let adj = matrix_graph(session.matrix());
        let part = Partition {
            owner: session.owner().to_vec(),
            n_parts: p,
        };
        let seed = session.config().partition_seed;
        let Some(new_part) = apply_decision(&adj, &part, &load, decision, seed, REFINE_PASSES)
        else {
            record.outcome = "no_change".into();
            return record;
        };
        let plan = match plan_migration(
            session.matrix(),
            session.owner(),
            p,
            &new_part.owner,
            new_part.n_parts,
        ) {
            Ok(plan) => plan,
            Err(e) => {
                record.outcome = format!("abort:{e}");
                return record;
            }
        };
        if plan.is_identity() {
            record.outcome = "no_change".into();
            return record;
        }
        match session.migrate(&plan) {
            Ok((migrated, mrep)) => {
                let new_key = SessionKey::new(migrated.fingerprint(), migrated.config());
                cache.insert(new_key, Arc::new(migrated));
                cache.remove(key);
                self.policies.lock().expect("policy lock").remove(key);
                record.outcome = "rebalanced".into();
                record.new_p = plan.new_p;
                record.reused_ranks = mrep.reused_ranks;
                record.moved_rows = mrep.moved_rows;
                record.migrate_seconds = mrep.migrate_seconds;
            }
            Err(e) => {
                record.outcome = format!("abort:{e}");
            }
        }
        record
    }
}
