//! The concurrent solve service: a bounded worker pool over mpisim
//! universes with a bounded queue and explicit backpressure.
//!
//! Each of the `pool_size` workers runs at most one job at a time, and a
//! job launches at most `P` rank threads, so total solver threads stay
//! capped at `P × pool_size` no matter how many jobs are submitted. When
//! the queue is full, [`SolveService::submit`] *rejects* with
//! [`SubmitError::QueueFull`] instead of buffering unboundedly — callers
//! decide whether to wait, shed load, or retry.
//!
//! Failures stay contained: a job that deadlocks inside a universe comes
//! back as a failed [`JobResult`] carrying the
//! [`CommError`](parapre_mpisim::CommError) diagnostic (rank, peer, tag),
//! and the worker moves on to the next job — the process is never
//! poisoned.

use crate::autotune::AutoTuner;
use crate::cache::{CacheStats, SessionCache, SessionKey};
use crate::elastic::{RebalanceManager, RebalanceRecord};
use crate::jobs::{
    batch_rhs, problem_key, resolve_problem_with, JobResult, ResolvedProblem, SolveJob,
};
use crate::resilient::solve_resilient;
use crate::session::{BatchOptions, SolverSession};
use parapre_mpisim::FaultHook;
use parapre_resilience::elastic::RebalanceConfig;
use parapre_resilience::FaultPlan;
use parapre_sparse::Csr;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of worker threads (concurrent jobs).
    pub pool_size: usize,
    /// Maximum *queued* (not yet running) jobs before submissions are
    /// rejected with backpressure.
    pub queue_capacity: usize,
    /// Session-cache capacity (resident factored sessions).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool_size: 4,
            queue_capacity: 16,
            cache_capacity: 4,
        }
    }
}

impl ServiceConfig {
    /// Rejects configurations that cannot serve: a zero-sized pool has no
    /// worker to ever drain the queue (every ticket would hang forever),
    /// and a zero-capacity queue rejects every submission.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pool_size == 0 {
            return Err(ConfigError::ZeroPoolSize);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        Ok(())
    }
}

/// A [`ServiceConfig`] the service refuses to start with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `pool_size == 0`: no worker would ever run a job.
    ZeroPoolSize,
    /// `queue_capacity == 0`: every submission would be rejected.
    ZeroQueueCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroPoolSize => {
                write!(
                    f,
                    "pool_size must be >= 1 (a zero-sized pool never runs a job)"
                )
            }
            ConfigError::ZeroQueueCapacity => {
                write!(
                    f,
                    "queue_capacity must be >= 1 (a zero-capacity queue rejects every job)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — backpressure; retry after
    /// draining a ticket.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(
                    f,
                    "job queue full (capacity {capacity}); apply backpressure"
                )
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A unit of work for the service.
pub enum Job {
    /// A solve request (resolved, cached, and solved by the worker).
    Solve(Box<SolveJob>),
    /// An arbitrary closure (tests and embedders; runs on a worker slot
    /// under the same concurrency accounting as solves).
    Custom {
        /// Identifier echoed in the result.
        id: String,
        /// The work; `Err` marks the job failed.
        run: Box<dyn FnOnce() -> Result<(), String> + Send>,
    },
}

impl Job {
    fn id(&self) -> &str {
        match self {
            Job::Solve(j) => &j.id,
            Job::Custom { id, .. } => id,
        }
    }
}

/// Claim ticket for a submitted job; redeem with [`JobTicket::wait`].
pub struct JobTicket {
    /// The job's identifier.
    pub id: String,
    rx: Receiver<JobResult>,
}

impl JobTicket {
    /// Blocks until the job finishes and returns its result.
    pub fn wait(self) -> JobResult {
        self.rx
            .recv()
            .unwrap_or_else(|_| JobResult::failed(self.id, "worker disappeared"))
    }

    /// Non-blocking poll; `None` while the job is still queued or running.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.rx.try_recv().ok()
    }

    /// Blocks for at most `timeout`. `Ok` carries the result; `Err(self)`
    /// returns the still-live ticket so the caller can keep waiting (or
    /// drop it to abandon the job) — nobody gets stuck forever behind a
    /// hung rank.
    pub fn wait_timeout(self, timeout: Duration) -> Result<JobResult, JobTicket> {
        use std::sync::mpsc::RecvTimeoutError;
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(result),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => {
                Ok(JobResult::failed(self.id, "worker disappeared"))
            }
        }
    }
}

struct State {
    /// Queued jobs with their result channel and enqueue instant (the
    /// latter feeds the queue-wait histogram and `queue_ms`).
    queue: VecDeque<(Job, Sender<JobResult>, Instant)>,
    shutdown: bool,
}

/// A small LRU of resolved problems (assembled matrix + partition + rhs),
/// so repeated jobs skip assembly and partitioning as well as factorization.
/// File-backed problems are keyed by path: a changed file needs a restart.
struct ProblemCache {
    map: Mutex<HashMap<String, (Arc<ResolvedProblem>, u64)>>,
    capacity: usize,
    tick: AtomicUsize,
}

impl ProblemCache {
    fn new(capacity: usize) -> ProblemCache {
        ProblemCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicUsize::new(0),
        }
    }

    fn get_or_resolve(
        &self,
        job: &SolveJob,
        matrices: &MatrixStore,
    ) -> Result<Arc<ResolvedProblem>, crate::EngineError> {
        let key = problem_key(job);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        {
            let mut map = self.map.lock().expect("problem cache lock");
            if let Some((problem, last_used)) = map.get_mut(&key) {
                *last_used = tick;
                return Ok(Arc::clone(problem));
            }
        }
        // Resolve outside the lock; concurrent identical jobs may resolve
        // redundantly (bounded by the pool size) — cheaper than serializing.
        let problem = Arc::new(resolve_problem_with(job, &|fp| matrices.get(fp))?);
        let mut map = self.map.lock().expect("problem cache lock");
        map.entry(key)
            .or_insert_with(|| (Arc::clone(&problem), tick));
        while map.len() > self.capacity {
            let lru = map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            map.remove(&lru);
        }
        Ok(problem)
    }
}

/// Counter snapshot of the fingerprint matrix store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixStoreStats {
    /// Matrices resident.
    pub len: usize,
    /// First-time registrations.
    pub puts: u64,
    /// Re-registrations deduplicated by fingerprint.
    pub dedups: u64,
    /// Fingerprint lookups that found a matrix.
    pub hits: u64,
    /// Fingerprint lookups that missed.
    pub misses: u64,
}

/// Matrices registered by content fingerprint, so network clients upload a
/// matrix once and then submit `{"fp":"<hex>"}` jobs — the repeat-matrix
/// path moves a ~20-byte reference instead of megabytes of triplets, and
/// the [`SessionCache`]'s single-flight build keyed on the same
/// fingerprint dedups the factorization behind it.
pub struct MatrixStore {
    map: Mutex<HashMap<u64, Arc<Csr>>>,
    puts: AtomicU64,
    dedups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for MatrixStore {
    fn default() -> Self {
        MatrixStore::new()
    }
}

impl MatrixStore {
    /// An empty store.
    pub fn new() -> MatrixStore {
        MatrixStore {
            map: Mutex::new(HashMap::new()),
            puts: AtomicU64::new(0),
            dedups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Registers a matrix and returns `(fingerprint, known_before)`.
    /// Re-registering identical content is a cheap dedup (the parsed copy
    /// is dropped, the resident one stays).
    pub fn put(&self, a: Csr) -> (u64, bool) {
        let fp = a.fingerprint();
        let mut map = self.map.lock().expect("matrix store lock");
        let known = map.contains_key(&fp);
        if known {
            self.dedups.fetch_add(1, Ordering::Relaxed);
            parapre_metrics::inc(parapre_metrics::names::NET_MATRIX_DEDUP_TOTAL, 1);
        } else {
            map.insert(fp, Arc::new(a));
            self.puts.fetch_add(1, Ordering::Relaxed);
            parapre_metrics::inc(parapre_metrics::names::NET_MATRIX_PUTS_TOTAL, 1);
        }
        (fp, known)
    }

    /// The matrix registered under `fp`, if any.
    pub fn get(&self, fp: u64) -> Option<Arc<Csr>> {
        let found = self
            .map
            .lock()
            .expect("matrix store lock")
            .get(&fp)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> MatrixStoreStats {
        MatrixStoreStats {
            len: self.map.lock().expect("matrix store lock").len(),
            puts: self.puts.load(Ordering::Relaxed),
            dedups: self.dedups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    state: Mutex<State>,
    available: Condvar,
    active: AtomicUsize,
    peak_active: AtomicUsize,
    cache: SessionCache,
    problems: ProblemCache,
    matrices: MatrixStore,
    tuner: AutoTuner,
    rebalancer: RebalanceManager,
    cfg: ServiceConfig,
}

/// The running service (workers live for the service's lifetime; dropping
/// it drains the queue and joins them).
pub struct SolveService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SolveService {
    /// Validates `cfg` and starts `cfg.pool_size` workers. A zero pool or
    /// queue is a typed [`ConfigError`], not a hang or a panic.
    pub fn start(cfg: ServiceConfig) -> Result<SolveService, ConfigError> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            active: AtomicUsize::new(0),
            peak_active: AtomicUsize::new(0),
            cache: SessionCache::new(cfg.cache_capacity),
            problems: ProblemCache::new(cfg.cache_capacity),
            matrices: MatrixStore::new(),
            tuner: AutoTuner::default(),
            rebalancer: RebalanceManager::new(RebalanceConfig::default()),
            cfg,
        });
        let workers = (0..cfg.pool_size)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(SolveService { shared, workers })
    }

    /// Submits a job, returning its ticket — or rejecting with
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity.
    pub fn submit(&self, job: Job) -> Result<JobTicket, SubmitError> {
        let id = job.id().to_string();
        let (tx, rx) = channel();
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queue.len() >= self.shared.cfg.queue_capacity {
                return Err(SubmitError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            st.queue.push_back((job, tx, Instant::now()));
        }
        self.shared.available.notify_one();
        Ok(JobTicket { id, rx })
    }

    /// Convenience: submit a solve job.
    pub fn submit_solve(&self, job: SolveJob) -> Result<JobTicket, SubmitError> {
        self.submit(Job::Solve(Box::new(job)))
    }

    /// Session-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The fingerprint matrix store (network ingest path).
    pub fn matrix_store(&self) -> &MatrixStore {
        &self.shared.matrices
    }

    /// The fingerprint-keyed autotuner serving `"precond":"auto"` jobs.
    pub fn tuner(&self) -> &AutoTuner {
        &self.shared.tuner
    }

    /// Runs one elastic rebalance pass over every cached session, acting
    /// on its most recent load attribution. `force: true` (the
    /// `{"cmd":"rebalance"}` control verb) decides on the latest
    /// observation alone; `force: false` (the periodic auto-rebalance
    /// loop) requires the policy's sustained streak. Migrated sessions
    /// replace their predecessors in the cache under topology-tagged
    /// keys; aborts leave the old sessions serving.
    pub fn rebalance_pass(&self, force: bool) -> Vec<RebalanceRecord> {
        self.shared.rebalancer.pass(&self.shared.cache, force)
    }

    /// One flat JSON line of live statistics: job/cache/store/tuner
    /// counters plus the latency-quantile and load-gauge headline numbers.
    /// Shared by the `parapre-serve` and `parapre-netd` `{"cmd":"stats"}`
    /// handlers so both surfaces report identically.
    pub fn stats_json(&self) -> String {
        use parapre_metrics::names;
        let snap = parapre_metrics::snapshot();
        let cache = self.cache_stats();
        let store = self.matrix_store().stats();
        let tuner = self.tuner().stats();
        let ms = |name: &str, q: f64| -> f64 {
            snap.hist(name).map_or(0.0, |h| h.quantile(q) as f64 / 1e3)
        };
        let gauge = |name: &str| -> f64 {
            let v = snap.gauge(name);
            if v.is_finite() {
                v
            } else {
                0.0
            }
        };
        format!(
            "{{\"stats\":true,\"jobs\":{},\"jobs_failed\":{},\"solves\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_waits\":{},\
             \"store_len\":{},\"store_puts\":{},\"store_dedups\":{},\
             \"store_hits\":{},\"store_misses\":{},\
             \"tuner_records\":{},\"tuner_explore\":{},\"tuner_exploit\":{},\
             \"queue_p50_ms\":{:.3},\"queue_p99_ms\":{:.3},\
             \"build_p50_ms\":{:.3},\"build_p99_ms\":{:.3},\
             \"solve_p50_ms\":{:.3},\"solve_p99_ms\":{:.3},\
             \"e2e_p50_ms\":{:.3},\"e2e_p99_ms\":{:.3},\
             \"load_imbalance\":{:.4},\"load_comm_fraction\":{:.4},\
             \"conv_events\":{}}}",
            snap.counter(names::JOBS_TOTAL),
            snap.counter(names::JOBS_FAILED_TOTAL),
            snap.counter(names::SOLVES_TOTAL),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.waits,
            store.len,
            store.puts,
            store.dedups,
            store.hits,
            store.misses,
            tuner.records,
            tuner.explore,
            tuner.exploit,
            ms(names::QUEUE_WAIT_US, 0.5),
            ms(names::QUEUE_WAIT_US, 0.99),
            ms(names::BUILD_US, 0.5),
            ms(names::BUILD_US, 0.99),
            ms(names::SOLVE_US, 0.5),
            ms(names::SOLVE_US, 0.99),
            ms(names::E2E_US, 0.5),
            ms(names::E2E_US, 0.99),
            gauge(names::LOAD_IMBALANCE),
            gauge(names::LOAD_COMM_FRACTION),
            parapre_metrics::global().ring().total(),
        )
    }

    /// Highest number of jobs ever running simultaneously — bounded by
    /// `pool_size` by construction; exposed so tests can assert it.
    pub fn peak_concurrency(&self) -> usize {
        self.shared.peak_active.load(Ordering::Relaxed)
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> ServiceConfig {
        self.shared.cfg
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("service lock");
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut st = shared.state.lock().expect("service lock");
            loop {
                if let Some(item) = st.queue.pop_front() {
                    break Some(item);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.available.wait(st).expect("service lock");
            }
        };
        let Some((job, tx, enqueued)) = item else {
            return;
        };
        let queued = enqueued.elapsed();
        parapre_metrics::observe_duration(parapre_metrics::names::QUEUE_WAIT_US, queued);
        let id = job.id().to_string();
        let now_active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak_active.fetch_max(now_active, Ordering::SeqCst);
        let run_t0 = Instant::now();
        // Per-job deadline, counted from submission. A job whose deadline
        // expired while it sat in the queue is rejected *here*, before it
        // can occupy the worker; `run_solve_job` re-checks between repeats
        // so a multi-repeat job cannot hold the slot past its deadline
        // either.
        let deadline = match &job {
            Job::Solve(j) => j.deadline_ms.map(|ms| enqueued + Duration::from_millis(ms)),
            Job::Custom { .. } => None,
        };
        let expired_in_queue = deadline.is_some_and(|dl| Instant::now() >= dl);
        let mut result = if expired_in_queue {
            let mut r = JobResult::failed(
                id,
                format!(
                    "deadline exceeded after {:.0} ms in queue",
                    queued.as_secs_f64() * 1e3
                ),
            );
            r.error_kind = Some("timeout".into());
            r
        } else {
            catch_unwind(AssertUnwindSafe(|| run_job(shared, job, deadline))).unwrap_or_else(
                |payload| {
                    let mut r = JobResult::failed(id, panic_message(payload));
                    r.error_kind = Some("panic".into());
                    r
                },
            )
        };
        result.queue_ms = queued.as_secs_f64() * 1e3;
        parapre_metrics::inc(parapre_metrics::names::JOBS_TOTAL, 1);
        if !result.ok {
            parapre_metrics::inc(parapre_metrics::names::JOBS_FAILED_TOTAL, 1);
        }
        // End-to-end = queue wait + processing: the latency a caller sees.
        parapre_metrics::observe_duration(
            parapre_metrics::names::E2E_US,
            queued + run_t0.elapsed(),
        );
        shared.active.fetch_sub(1, Ordering::SeqCst);
        // A dropped ticket just means nobody is waiting for this result.
        let _ = tx.send(result);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "job panicked".to_string(),
        },
    }
}

fn run_job(shared: &Shared, job: Job, deadline: Option<Instant>) -> JobResult {
    match job {
        Job::Custom { id, run } => match run() {
            Ok(()) => JobResult {
                ok: true,
                error: None,
                ..JobResult::failed(id, "")
            },
            Err(e) => JobResult::failed(id, e),
        },
        Job::Solve(job) => run_solve_job(shared, &job, deadline),
    }
}

fn run_solve_job(shared: &Shared, job: &SolveJob, deadline: Option<Instant>) -> JobResult {
    let t0 = Instant::now();
    let resolved = match shared.problems.get_or_resolve(job, &shared.matrices) {
        Ok(r) => r,
        Err(e) => {
            let mut r = JobResult::failed(&job.id, e.to_string());
            if matches!(e, crate::EngineError::BadJob(_)) {
                r.error_kind = Some("rejected".into());
            }
            return r;
        }
    };
    let fingerprint = resolved.a.fingerprint();
    // `"precond":"auto"`: the tuner picks the rung for this fingerprint —
    // explore until every candidate has data, then exploit the fastest
    // converged mean. Non-auto jobs skip this entirely (no decision cost)
    // but still feed the tuner below.
    let mut session_cfg = job.session.clone();
    if job.auto_precond {
        let (kind, _decision) = shared.tuner.select(fingerprint);
        session_cfg.precond = kind;
    }
    let session_cfg = session_cfg; // frozen for the rest of the job
    let key = SessionKey::new(fingerprint, &session_cfg);
    let (session, cache_hit) = match shared.cache.get_or_build(key, || {
        SolverSession::build(&resolved.a, &resolved.owner, &session_cfg)
    }) {
        Ok(pair) => pair,
        Err(e) => return JobResult::failed(&job.id, e.to_string()),
    };
    let setup_seconds = if cache_hit {
        0.0
    } else {
        let s = t0.elapsed().as_secs_f64();
        parapre_metrics::observe_us(parapre_metrics::names::BUILD_US, (s * 1e6) as u64);
        s
    };
    // One plan per job: a `once` kill fires on the first repeat's first
    // attempt and every later attempt/repeat runs clean, modelling a
    // transient failure.
    let plan: Option<Arc<FaultPlan>> = job.fault.clone().map(|f| Arc::new(FaultPlan::new(f)));
    let mut iterations = Vec::with_capacity(job.repeat);
    let mut converged = true;
    let mut final_relres = f64::NAN;
    let mut true_relres = f64::NAN;
    let mut solve_seconds = 0.0;
    let mut retries = 0usize;
    let mut degraded = false;
    let mut dead_ranks: Vec<usize> = Vec::new();
    let mut pivot_shifts = 0usize;
    let mut fallbacks = 0usize;
    let mut breakdown_kind: Option<String> = None;
    let merge_dead = |dead_ranks: &mut Vec<usize>, more: &[usize]| {
        for &r in more {
            if !dead_ranks.contains(&r) {
                dead_ranks.push(r);
            }
        }
        dead_ranks.sort_unstable();
    };
    if job.batch > 1 {
        // Batched multi-RHS path: one universe launch per repeat serves
        // every RHS against the shared factors. The generated RHS form a
        // smooth sequence, so each solve is warm-started from the previous
        // solution — an advantage only the batched path can have. (Fault
        // injection is rejected for batch jobs at parse time — this path
        // has no retry ladder inside the batch.)
        let rhss = batch_rhs(&resolved.b, job.batch);
        let opts = BatchOptions { warm_start: true };
        for done in 0..job.repeat {
            if let Some(r) = deadline_expired(job, deadline, done) {
                return r;
            }
            match session.solve_batch(&rhss, resolved.x0.as_deref(), opts) {
                Ok(batch) => {
                    for rep in &batch.reports {
                        iterations.push(rep.iterations);
                        converged &= rep.converged;
                        final_relres = rep.final_relres;
                        true_relres = rep.true_relres;
                        if let Some(b) = rep.breakdown {
                            breakdown_kind = Some(b.kind.key().to_string());
                        }
                    }
                    solve_seconds += batch.batch_seconds;
                }
                Err(e) => {
                    let mut r = JobResult::failed(&job.id, e.to_string());
                    r.batch = job.batch;
                    r.error_kind = Some("rank_failure".into());
                    record_tune(shared, job, fingerprint, &session_cfg, false, 0.0, 0, 0, 0);
                    return r;
                }
            }
        }
    } else {
        for done in 0..job.repeat {
            if let Some(r) = deadline_expired(job, deadline, done) {
                return r;
            }
            let hook = plan.clone().map(|p| p as Arc<dyn FaultHook>);
            match solve_resilient(
                &session,
                &resolved.b,
                resolved.x0.as_deref(),
                hook,
                &job.recovery,
            ) {
                Ok((rep, out)) => {
                    iterations.push(rep.iterations);
                    converged &= rep.converged;
                    final_relres = rep.final_relres;
                    true_relres = rep.true_relres;
                    solve_seconds += rep.solve_seconds;
                    retries += out.retries;
                    degraded |= out.degraded;
                    pivot_shifts += out.pivot_shifts;
                    fallbacks += out.fallbacks;
                    if out.breakdown_kind.is_some() {
                        breakdown_kind = out.breakdown_kind;
                    }
                    merge_dead(&mut dead_ranks, &out.dead_ranks);
                }
                Err((e, out)) => {
                    let mut r = JobResult::failed(&job.id, e.to_string());
                    r.retries = retries + out.retries;
                    r.degraded = degraded;
                    r.pivot_shifts = pivot_shifts + out.pivot_shifts;
                    r.fallbacks = fallbacks + out.fallbacks;
                    r.breakdown_kind = out.breakdown_kind.or(breakdown_kind);
                    merge_dead(&mut dead_ranks, &out.dead_ranks);
                    r.dead_ranks = dead_ranks;
                    r.error_kind = out.error_kind.or_else(|| Some("rank_failure".into()));
                    record_tune(shared, job, fingerprint, &session_cfg, false, 0.0, 0, 0, 0);
                    return r;
                }
            }
        }
    }
    let total_iters: usize = iterations.iter().sum();
    record_tune(
        shared,
        job,
        fingerprint,
        &session_cfg,
        converged,
        solve_seconds,
        total_iters,
        pivot_shifts,
        fallbacks,
    );
    JobResult {
        id: job.id.clone(),
        ok: true,
        error: None,
        converged,
        iterations,
        final_relres,
        true_relres,
        cache_hit,
        setup_seconds,
        solve_seconds,
        queue_ms: 0.0, // stamped by the worker loop
        build_ms: setup_seconds * 1e3,
        solve_ms: solve_seconds * 1e3,
        n_unknowns: session.n_unknowns(),
        retries,
        degraded,
        dead_ranks,
        error_kind: None,
        pivot_shifts,
        fallbacks,
        breakdown_kind,
        batch: job.batch,
        precond_used: Some(session.active_precond().key().to_string()),
        auto: job.auto_precond,
    }
}

/// Structured `timeout` rejection when a job's deadline has passed with
/// `done` of its repeats finished; `None` while the job may keep going.
/// The worker stays available for the next job instead of being occupied
/// by a solve whose caller already gave up on it.
fn deadline_expired(job: &SolveJob, deadline: Option<Instant>, done: usize) -> Option<JobResult> {
    let dl = deadline?;
    if Instant::now() < dl {
        return None;
    }
    let mut r = JobResult::failed(
        &job.id,
        format!("deadline exceeded after {done} of {} repeats", job.repeat),
    );
    r.error_kind = Some("timeout".into());
    r.batch = job.batch;
    Some(r)
}

/// Feeds one job's outcome into the autotuner. Every solve job reports —
/// fixed-precond traffic warms the store for later `"auto"` jobs — except
/// fault-injected ones, whose timings measure the chaos plan, not the
/// preconditioner. Per-solve normalization (÷ repeats × batch) keeps
/// records comparable across job shapes.
#[allow(clippy::too_many_arguments)]
fn record_tune(
    shared: &Shared,
    job: &SolveJob,
    fingerprint: u64,
    session_cfg: &crate::SessionConfig,
    converged: bool,
    solve_seconds: f64,
    total_iters: usize,
    pivot_shifts: usize,
    fallbacks: usize,
) {
    if job.fault.is_some() {
        return;
    }
    let n_solves = (job.repeat * job.batch).max(1) as u64;
    shared.tuner.record(
        fingerprint,
        session_cfg.precond,
        crate::TuneSample {
            converged,
            solve_us: (solve_seconds * 1e6) as u64 / n_solves,
            iterations: total_iters as u64 / n_solves,
            pivot_shifts: pivot_shifts as u64,
            fallbacks: fallbacks as u64,
        },
    );
}
