//! The concurrent solve service: a bounded worker pool over mpisim
//! universes with a bounded queue and explicit backpressure.
//!
//! Each of the `pool_size` workers runs at most one job at a time, and a
//! job launches at most `P` rank threads, so total solver threads stay
//! capped at `P × pool_size` no matter how many jobs are submitted. When
//! the queue is full, [`SolveService::submit`] *rejects* with
//! [`SubmitError::QueueFull`] instead of buffering unboundedly — callers
//! decide whether to wait, shed load, or retry.
//!
//! Failures stay contained: a job that deadlocks inside a universe comes
//! back as a failed [`JobResult`] carrying the
//! [`CommError`](parapre_mpisim::CommError) diagnostic (rank, peer, tag),
//! and the worker moves on to the next job — the process is never
//! poisoned.

use crate::cache::{CacheStats, SessionCache, SessionKey};
use crate::jobs::{problem_key, resolve_problem, JobResult, ResolvedProblem, SolveJob};
use crate::resilient::solve_resilient;
use crate::session::SolverSession;
use parapre_mpisim::FaultHook;
use parapre_resilience::FaultPlan;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of worker threads (concurrent jobs).
    pub pool_size: usize,
    /// Maximum *queued* (not yet running) jobs before submissions are
    /// rejected with backpressure.
    pub queue_capacity: usize,
    /// Session-cache capacity (resident factored sessions).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool_size: 4,
            queue_capacity: 16,
            cache_capacity: 4,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — backpressure; retry after
    /// draining a ticket.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(
                    f,
                    "job queue full (capacity {capacity}); apply backpressure"
                )
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A unit of work for the service.
pub enum Job {
    /// A solve request (resolved, cached, and solved by the worker).
    Solve(Box<SolveJob>),
    /// An arbitrary closure (tests and embedders; runs on a worker slot
    /// under the same concurrency accounting as solves).
    Custom {
        /// Identifier echoed in the result.
        id: String,
        /// The work; `Err` marks the job failed.
        run: Box<dyn FnOnce() -> Result<(), String> + Send>,
    },
}

impl Job {
    fn id(&self) -> &str {
        match self {
            Job::Solve(j) => &j.id,
            Job::Custom { id, .. } => id,
        }
    }
}

/// Claim ticket for a submitted job; redeem with [`JobTicket::wait`].
pub struct JobTicket {
    /// The job's identifier.
    pub id: String,
    rx: Receiver<JobResult>,
}

impl JobTicket {
    /// Blocks until the job finishes and returns its result.
    pub fn wait(self) -> JobResult {
        self.rx
            .recv()
            .unwrap_or_else(|_| JobResult::failed(self.id, "worker disappeared"))
    }

    /// Non-blocking poll; `None` while the job is still queued or running.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.rx.try_recv().ok()
    }

    /// Blocks for at most `timeout`. `Ok` carries the result; `Err(self)`
    /// returns the still-live ticket so the caller can keep waiting (or
    /// drop it to abandon the job) — nobody gets stuck forever behind a
    /// hung rank.
    pub fn wait_timeout(self, timeout: Duration) -> Result<JobResult, JobTicket> {
        use std::sync::mpsc::RecvTimeoutError;
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(result),
            Err(RecvTimeoutError::Timeout) => Err(self),
            Err(RecvTimeoutError::Disconnected) => {
                Ok(JobResult::failed(self.id, "worker disappeared"))
            }
        }
    }
}

struct State {
    /// Queued jobs with their result channel and enqueue instant (the
    /// latter feeds the queue-wait histogram and `queue_ms`).
    queue: VecDeque<(Job, Sender<JobResult>, Instant)>,
    shutdown: bool,
}

/// A small LRU of resolved problems (assembled matrix + partition + rhs),
/// so repeated jobs skip assembly and partitioning as well as factorization.
/// File-backed problems are keyed by path: a changed file needs a restart.
struct ProblemCache {
    map: Mutex<HashMap<String, (Arc<ResolvedProblem>, u64)>>,
    capacity: usize,
    tick: AtomicUsize,
}

impl ProblemCache {
    fn new(capacity: usize) -> ProblemCache {
        ProblemCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicUsize::new(0),
        }
    }

    fn get_or_resolve(&self, job: &SolveJob) -> Result<Arc<ResolvedProblem>, crate::EngineError> {
        let key = problem_key(job);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        {
            let mut map = self.map.lock().expect("problem cache lock");
            if let Some((problem, last_used)) = map.get_mut(&key) {
                *last_used = tick;
                return Ok(Arc::clone(problem));
            }
        }
        // Resolve outside the lock; concurrent identical jobs may resolve
        // redundantly (bounded by the pool size) — cheaper than serializing.
        let problem = Arc::new(resolve_problem(job)?);
        let mut map = self.map.lock().expect("problem cache lock");
        map.entry(key)
            .or_insert_with(|| (Arc::clone(&problem), tick));
        while map.len() > self.capacity {
            let lru = map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            map.remove(&lru);
        }
        Ok(problem)
    }
}

struct Shared {
    state: Mutex<State>,
    available: Condvar,
    active: AtomicUsize,
    peak_active: AtomicUsize,
    cache: SessionCache,
    problems: ProblemCache,
    cfg: ServiceConfig,
}

/// The running service (workers live for the service's lifetime; dropping
/// it drains the queue and joins them).
pub struct SolveService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SolveService {
    /// Starts `cfg.pool_size` workers.
    pub fn start(cfg: ServiceConfig) -> SolveService {
        assert!(cfg.pool_size >= 1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            active: AtomicUsize::new(0),
            peak_active: AtomicUsize::new(0),
            cache: SessionCache::new(cfg.cache_capacity),
            problems: ProblemCache::new(cfg.cache_capacity),
            cfg,
        });
        let workers = (0..cfg.pool_size)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        SolveService { shared, workers }
    }

    /// Submits a job, returning its ticket — or rejecting with
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity.
    pub fn submit(&self, job: Job) -> Result<JobTicket, SubmitError> {
        let id = job.id().to_string();
        let (tx, rx) = channel();
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queue.len() >= self.shared.cfg.queue_capacity {
                return Err(SubmitError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            st.queue.push_back((job, tx, Instant::now()));
        }
        self.shared.available.notify_one();
        Ok(JobTicket { id, rx })
    }

    /// Convenience: submit a solve job.
    pub fn submit_solve(&self, job: SolveJob) -> Result<JobTicket, SubmitError> {
        self.submit(Job::Solve(Box::new(job)))
    }

    /// Session-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Highest number of jobs ever running simultaneously — bounded by
    /// `pool_size` by construction; exposed so tests can assert it.
    pub fn peak_concurrency(&self) -> usize {
        self.shared.peak_active.load(Ordering::Relaxed)
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> ServiceConfig {
        self.shared.cfg
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("service lock");
            st.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut st = shared.state.lock().expect("service lock");
            loop {
                if let Some(item) = st.queue.pop_front() {
                    break Some(item);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.available.wait(st).expect("service lock");
            }
        };
        let Some((job, tx, enqueued)) = item else {
            return;
        };
        let queued = enqueued.elapsed();
        parapre_metrics::observe_duration(parapre_metrics::names::QUEUE_WAIT_US, queued);
        let id = job.id().to_string();
        let now_active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak_active.fetch_max(now_active, Ordering::SeqCst);
        let run_t0 = Instant::now();
        let mut result =
            catch_unwind(AssertUnwindSafe(|| run_job(shared, job))).unwrap_or_else(|payload| {
                let mut r = JobResult::failed(id, panic_message(payload));
                r.error_kind = Some("panic".into());
                r
            });
        result.queue_ms = queued.as_secs_f64() * 1e3;
        parapre_metrics::inc(parapre_metrics::names::JOBS_TOTAL, 1);
        if !result.ok {
            parapre_metrics::inc(parapre_metrics::names::JOBS_FAILED_TOTAL, 1);
        }
        // End-to-end = queue wait + processing: the latency a caller sees.
        parapre_metrics::observe_duration(
            parapre_metrics::names::E2E_US,
            queued + run_t0.elapsed(),
        );
        shared.active.fetch_sub(1, Ordering::SeqCst);
        // A dropped ticket just means nobody is waiting for this result.
        let _ = tx.send(result);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "job panicked".to_string(),
        },
    }
}

fn run_job(shared: &Shared, job: Job) -> JobResult {
    match job {
        Job::Custom { id, run } => match run() {
            Ok(()) => JobResult {
                ok: true,
                error: None,
                ..JobResult::failed(id, "")
            },
            Err(e) => JobResult::failed(id, e),
        },
        Job::Solve(job) => run_solve_job(shared, &job),
    }
}

fn run_solve_job(shared: &Shared, job: &SolveJob) -> JobResult {
    let t0 = Instant::now();
    let resolved = match shared.problems.get_or_resolve(job) {
        Ok(r) => r,
        Err(e) => {
            let mut r = JobResult::failed(&job.id, e.to_string());
            if matches!(e, crate::EngineError::BadJob(_)) {
                r.error_kind = Some("rejected".into());
            }
            return r;
        }
    };
    let key = SessionKey::new(resolved.a.fingerprint(), &job.session);
    let (session, cache_hit) = match shared.cache.get_or_build(key, || {
        SolverSession::build(&resolved.a, &resolved.owner, &job.session)
    }) {
        Ok(pair) => pair,
        Err(e) => return JobResult::failed(&job.id, e.to_string()),
    };
    let setup_seconds = if cache_hit {
        0.0
    } else {
        let s = t0.elapsed().as_secs_f64();
        parapre_metrics::observe_us(parapre_metrics::names::BUILD_US, (s * 1e6) as u64);
        s
    };
    // One plan per job: a `once` kill fires on the first repeat's first
    // attempt and every later attempt/repeat runs clean, modelling a
    // transient failure.
    let plan: Option<Arc<FaultPlan>> = job.fault.clone().map(|f| Arc::new(FaultPlan::new(f)));
    let mut iterations = Vec::with_capacity(job.repeat);
    let mut converged = true;
    let mut final_relres = f64::NAN;
    let mut true_relres = f64::NAN;
    let mut solve_seconds = 0.0;
    let mut retries = 0usize;
    let mut degraded = false;
    let mut dead_ranks: Vec<usize> = Vec::new();
    let mut pivot_shifts = 0usize;
    let mut fallbacks = 0usize;
    let mut breakdown_kind: Option<String> = None;
    let merge_dead = |dead_ranks: &mut Vec<usize>, more: &[usize]| {
        for &r in more {
            if !dead_ranks.contains(&r) {
                dead_ranks.push(r);
            }
        }
        dead_ranks.sort_unstable();
    };
    for _ in 0..job.repeat {
        let hook = plan.clone().map(|p| p as Arc<dyn FaultHook>);
        match solve_resilient(
            &session,
            &resolved.b,
            resolved.x0.as_deref(),
            hook,
            &job.recovery,
        ) {
            Ok((rep, out)) => {
                iterations.push(rep.iterations);
                converged &= rep.converged;
                final_relres = rep.final_relres;
                true_relres = rep.true_relres;
                solve_seconds += rep.solve_seconds;
                retries += out.retries;
                degraded |= out.degraded;
                pivot_shifts += out.pivot_shifts;
                fallbacks += out.fallbacks;
                if out.breakdown_kind.is_some() {
                    breakdown_kind = out.breakdown_kind;
                }
                merge_dead(&mut dead_ranks, &out.dead_ranks);
            }
            Err((e, out)) => {
                let mut r = JobResult::failed(&job.id, e.to_string());
                r.retries = retries + out.retries;
                r.degraded = degraded;
                r.pivot_shifts = pivot_shifts + out.pivot_shifts;
                r.fallbacks = fallbacks + out.fallbacks;
                r.breakdown_kind = out.breakdown_kind.or(breakdown_kind);
                merge_dead(&mut dead_ranks, &out.dead_ranks);
                r.dead_ranks = dead_ranks;
                r.error_kind = out.error_kind.or_else(|| Some("rank_failure".into()));
                return r;
            }
        }
    }
    JobResult {
        id: job.id.clone(),
        ok: true,
        error: None,
        converged,
        iterations,
        final_relres,
        true_relres,
        cache_hit,
        setup_seconds,
        solve_seconds,
        queue_ms: 0.0, // stamped by the worker loop
        build_ms: setup_seconds * 1e3,
        solve_ms: solve_seconds * 1e3,
        n_unknowns: session.n_unknowns(),
        retries,
        degraded,
        dead_ranks,
        error_kind: None,
        pivot_shifts,
        fallbacks,
        breakdown_kind,
    }
}
