//! The session cache: LRU-evicting, single-flight, keyed by matrix content
//! and solver configuration.
//!
//! A cache hit means a job skips partitioning, row distribution, and the
//! whole preconditioner factorization — the dominant cost of small repeated
//! solves. Keys combine the matrix [`fingerprint`](parapre_sparse::Csr::fingerprint)
//! with [`SessionConfig::config_string`], so two jobs share a session iff
//! they would have built bit-identical ones. Hit/miss/eviction counts are
//! kept in process-wide atomics *and* emitted as `parapre-trace` counters
//! (`engine.cache.hit` / `.miss` / `.evict`) on traced threads.

use crate::session::{SessionConfig, SolverSession};
use crate::EngineError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cache identity of a session.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Content fingerprint of the (already layout-ready) matrix.
    pub fingerprint: u64,
    /// Canonical solver-configuration string
    /// ([`SessionConfig::config_string`]).
    pub config: String,
}

impl SessionKey {
    /// Builds the key for `cfg` applied to a matrix with `fingerprint`.
    pub fn new(fingerprint: u64, cfg: &SessionConfig) -> SessionKey {
        SessionKey {
            fingerprint,
            config: cfg.config_string(),
        }
    }
}

/// Counter snapshot for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Sessions evicted by the LRU policy.
    pub evictions: u64,
    /// Times a caller blocked behind another thread's in-flight build of
    /// the same key (single-flight waits; each is one factorization saved).
    pub waits: u64,
    /// Sessions currently resident.
    pub len: usize,
    /// Maximum resident sessions.
    pub capacity: usize,
}

struct Entry {
    session: Arc<SolverSession>,
    last_used: u64,
}

struct Inner {
    map: HashMap<SessionKey, Entry>,
    /// Keys currently being built by some thread (single-flight guard:
    /// concurrent identical jobs wait instead of factoring twice).
    building: Vec<SessionKey>,
    tick: u64,
}

/// A bounded, thread-safe LRU cache of [`SolverSession`]s.
pub struct SessionCache {
    capacity: usize,
    inner: Mutex<Inner>,
    built: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    waits: AtomicU64,
}

impl SessionCache {
    /// Creates a cache holding at most `capacity` sessions (min 1).
    pub fn new(capacity: usize) -> SessionCache {
        SessionCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                building: Vec::new(),
                tick: 0,
            }),
            built: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }

    /// Returns the cached session for `key`, building it with `build` on a
    /// miss. The boolean is `true` for a hit. Concurrent callers with the
    /// same key block until the first finishes (single-flight); callers
    /// with different keys build concurrently (the lock is not held while
    /// building).
    pub fn get_or_build<F>(
        &self,
        key: SessionKey,
        build: F,
    ) -> Result<(Arc<SolverSession>, bool), EngineError>
    where
        F: FnOnce() -> Result<SolverSession, EngineError>,
    {
        {
            let mut inner = self.inner.lock().expect("cache lock");
            let mut waited = false;
            loop {
                if inner.map.contains_key(&key) {
                    inner.tick += 1;
                    let tick = inner.tick;
                    let entry = inner.map.get_mut(&key).expect("just found");
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    parapre_trace::counter("engine.cache.hit", 1);
                    parapre_metrics::inc(parapre_metrics::names::CACHE_HITS_TOTAL, 1);
                    return Ok((Arc::clone(&entry.session), true));
                }
                if inner.building.contains(&key) {
                    if !waited {
                        // Count wait *episodes*, not condvar wakeups: one
                        // per caller that parked behind an in-flight build.
                        waited = true;
                        self.waits.fetch_add(1, Ordering::Relaxed);
                        parapre_trace::counter("engine.cache.wait", 1);
                    }
                    inner = self.built.wait(inner).expect("cache lock");
                    continue;
                }
                inner.building.push(key.clone());
                self.misses.fetch_add(1, Ordering::Relaxed);
                parapre_trace::counter("engine.cache.miss", 1);
                parapre_metrics::inc(parapre_metrics::names::CACHE_MISSES_TOTAL, 1);
                break;
            }
        }
        let built = build();
        let mut inner = self.inner.lock().expect("cache lock");
        inner.building.retain(|k| k != &key);
        let result = match built {
            Ok(session) => {
                let session = Arc::new(session);
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.insert(
                    key,
                    Entry {
                        session: Arc::clone(&session),
                        last_used: tick,
                    },
                );
                while inner.map.len() > self.capacity {
                    let lru = inner
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                        .expect("non-empty over capacity");
                    inner.map.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    parapre_trace::counter("engine.cache.evict", 1);
                    parapre_metrics::inc(parapre_metrics::names::CACHE_EVICTIONS_TOTAL, 1);
                }
                Ok((session, false))
            }
            Err(e) => Err(e),
        };
        drop(inner);
        self.built.notify_all();
        result
    }

    /// Inserts (or replaces) a ready-made session under `key`, evicting
    /// LRU entries if needed. Used by the elastic layer to swap in a
    /// migrated session under its new topology-tagged key.
    pub fn insert(&self, key: SessionKey, session: Arc<SolverSession>) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                session,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            inner.map.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            parapre_trace::counter("engine.cache.evict", 1);
            parapre_metrics::inc(parapre_metrics::names::CACHE_EVICTIONS_TOTAL, 1);
        }
    }

    /// Removes the entry for `key` (no-op when absent); returns whether an
    /// entry was dropped. The elastic layer retires a superseded topology
    /// with this once its successor passed the residual probe.
    pub fn remove(&self, key: &SessionKey) -> bool {
        self.inner
            .lock()
            .expect("cache lock")
            .map
            .remove(key)
            .is_some()
    }

    /// Snapshot of every resident entry (most recently used last). The
    /// elastic layer iterates this to find rebalance candidates.
    pub fn entries(&self) -> Vec<(SessionKey, Arc<SolverSession>)> {
        let inner = self.inner.lock().expect("cache lock");
        let mut all: Vec<(&SessionKey, &Entry)> = inner.map.iter().collect();
        all.sort_by_key(|(_, e)| e.last_used);
        all.into_iter()
            .map(|(k, e)| (k.clone(), Arc::clone(&e.session)))
            .collect()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every resident session (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("cache lock").map.clear();
    }
}
