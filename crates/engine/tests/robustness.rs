//! End-to-end numerical-safety tests: hostile systems through
//! `SolverSession`, `solve_resilient`, and the JSONL job layer.

use parapre_core::PrecondKind;
use parapre_engine::{
    parse_job_line, solve_resilient, JobResult, RecoveryPolicy, SessionConfig, SolverSession,
};
use parapre_sparse::{Coo, Csr};

/// Structurally symmetric chain with zero / tiny / negative diagonals.
fn hostile(n: usize, seed: u64) -> Csr {
    let mut state = seed | 1;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut coo = Coo::new(n, n);
    for i in 0..n - 1 {
        coo.push(i, i + 1, -1.0 + 0.1 * rnd());
        coo.push(i + 1, i, -1.0 + 0.1 * rnd());
    }
    for i in 0..n {
        let d = match i % 5 {
            0 => 0.0,
            1 => 1e-14 * rnd(),
            2 => -(2.0 + rnd().abs()),
            _ => 4.0 + rnd().abs(),
        };
        coo.push(i, i, d);
    }
    coo.to_csr()
}

fn block_owner(n: usize, p: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * p) / n) as u32).collect()
}

/// A session with the safety net on builds on a matrix plain `Block 1`
/// cannot factor, reports its diagnostics, and solves without a panic or a
/// non-finite answer.
#[test]
fn session_builds_and_solves_hostile_system() {
    let n = 64;
    let a = hostile(n, 7);
    let owner = block_owner(n, 4);
    let mut cfg = SessionConfig::paper(PrecondKind::Block1, 4);
    cfg.gmres.max_iters = 120;
    let session = SolverSession::build(&a, &owner, &cfg).expect("safety net absorbs bad pivots");
    assert!(
        session.pivot_shifts() > 0 || session.build_fallbacks() > 0,
        "hostile diagonal must be visible in the build diagnostics"
    );
    let b = vec![1.0; n];
    let rep = session.solve(&b).expect("solve completes");
    if rep.converged {
        assert!(rep.x.iter().all(|v| v.is_finite()));
        assert!(rep.true_relres.is_finite());
    } else {
        assert!(rep.breakdown.is_some() || rep.x.iter().all(|v| v.is_finite()));
    }
}

/// With the net off, the same build dies — `fallback: false` reproduces the
/// strict behavior (and keys the session cache differently).
#[test]
fn strict_mode_still_fails_fast() {
    let n = 64;
    let a = hostile(n, 7);
    let owner = block_owner(n, 4);
    let mut strict = SessionConfig::paper(PrecondKind::Block1, 4);
    strict.fallback = false;
    assert!(SolverSession::build(&a, &owner, &strict).is_err());
    let lax = SessionConfig::paper(PrecondKind::Block1, 4);
    assert_ne!(strict.config_string(), lax.config_string());
}

/// The in-rank thread budget is a pure wall-clock knob: kernels are bitwise
/// identical at any budget, so `threads_per_rank` must NOT fragment the
/// session cache key.
#[test]
fn thread_budget_does_not_change_cache_key() {
    let base = SessionConfig::paper(PrecondKind::Block1, 4);
    let mut threaded = SessionConfig::paper(PrecondKind::Block1, 4);
    threaded.threads_per_rank = Some(4);
    assert_eq!(base.config_string(), threaded.config_string());
}

/// `solve_resilient` carries the numerical diagnostics in its outcome.
#[test]
fn resilient_outcome_reports_numerical_recovery() {
    let n = 64;
    let a = hostile(n, 11);
    let owner = block_owner(n, 2);
    let mut cfg = SessionConfig::paper(PrecondKind::Block1, 2);
    cfg.gmres.max_iters = 120;
    let session = SolverSession::build(&a, &owner, &cfg).expect("build");
    let b = vec![1.0; n];
    let (rep, out) = solve_resilient(&session, &b, None, None, &RecoveryPolicy::default())
        .expect("ladder bottom is infallible");
    assert!(
        out.pivot_shifts > 0 || out.fallbacks > 0 || rep.converged,
        "either the solve was clean or the outcome says what it cost"
    );
    if !rep.converged {
        assert!(rep.breakdown.is_some() || rep.x.iter().all(|v| v.is_finite()));
    }
}

/// The clean path stays free: a well-posed Poisson session reports zero
/// shifts, zero fallbacks, and its configured preconditioner.
#[test]
fn clean_session_has_zero_safety_cost() {
    use parapre_core::{build_case, CaseId, CaseSize};
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    let cfg = SessionConfig::paper(PrecondKind::Schur1, 4);
    let session = SolverSession::from_case(&case, &cfg).expect("clean build");
    assert_eq!(session.active_precond(), PrecondKind::Schur1);
    assert_eq!(session.build_fallbacks(), 0);
    assert_eq!(session.pivot_shifts(), 0);
    let rep = session.solve(&case.sys.b).expect("solve");
    assert!(rep.converged);
    assert!(rep.breakdown.is_none());
}

/// JSONL validation: unknown preconditioners and malformed lines are
/// structured `BadJob` errors, and the `fallback` knob parses.
#[test]
fn job_lines_are_validated() {
    assert!(parse_job_line(r#"{"case":"tc1","precond":"nonsense"}"#, 0).is_err());
    assert!(parse_job_line(r#"{"case":"tc1","ranks":0}"#, 0).is_err());
    assert!(parse_job_line("not json at all", 0).is_err());
    let job = parse_job_line(r#"{"case":"tc1","fallback":false}"#, 0).expect("valid");
    assert!(!job.session.fallback);
    assert!(!job.recovery.precond_fallback);
    let job = parse_job_line(r#"{"case":"tc1"}"#, 1).expect("valid");
    assert!(job.session.fallback, "safety net defaults on");
}

/// A right-hand side containing NaN is rejected up front with a structured
/// `BadJob` error instead of poisoning the solve.
#[test]
fn non_finite_rhs_is_rejected() {
    use parapre_core::{build_case, CaseId, CaseSize};
    use parapre_engine::resolve_problem;
    let n = build_case(CaseId::Tc1, CaseSize::Tiny).sys.b.len();
    let dir = std::env::temp_dir();
    let path = dir.join("parapre_robustness_nan_rhs.txt");
    let mut body = String::new();
    for i in 0..n {
        body.push_str(if i == 3 { "nan\n" } else { "1.0\n" });
    }
    std::fs::write(&path, &body).expect("write temp rhs");
    let line = format!(r#"{{"case":"tc1","rhs":"{}"}}"#, path.display());
    let job = parse_job_line(&line, 0).expect("job parses");
    let err = match resolve_problem(&job) {
        Err(e) => e,
        Ok(_) => panic!("rhs must be rejected"),
    };
    assert!(
        err.to_string().contains("not finite"),
        "unexpected rejection: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

/// Result lines carry the new diagnostics keys exactly when they are
/// meaningful.
#[test]
fn result_json_carries_safety_keys() {
    let mut r = JobResult::failed("j", "boom");
    r.ok = true;
    r.error = None;
    let json = r.to_json();
    assert!(!json.contains("pivot_shifts"));
    assert!(!json.contains("fallbacks"));
    assert!(!json.contains("breakdown_kind"));
    r.pivot_shifts = 3;
    r.fallbacks = 1;
    r.breakdown_kind = Some("stagnation".into());
    let json = r.to_json();
    assert!(json.contains("\"pivot_shifts\":3"));
    assert!(json.contains("\"fallbacks\":1"));
    assert!(json.contains("\"breakdown_kind\":\"stagnation\""));
}
