//! Hostile-input behavior of the job parser, LRU ordering of the session
//! cache under capacity pressure, and batched-solve correctness against
//! sequential solves. Every malformed line must come back as a structured
//! `Err`, never a panic.

use parapre_core::{build_case_sized, CaseId, PrecondKind};
use parapre_engine::{
    batch_rhs, parse_job_line, BatchOptions, ProblemSpec, ServiceConfig, SessionCache,
    SessionConfig, SessionKey, SolveService, SolverSession, MAX_JOB_LINE_BYTES,
};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn hostile_job_lines_reject_without_panic() {
    // A control frame is not a job: no problem key, structured rejection.
    let err = parse_job_line(r#"{"cmd":"frobnicate"}"#, 0).unwrap_err();
    assert!(err.to_string().contains("case"), "got {err}");

    // Mutually exclusive problem keys.
    assert!(parse_job_line(r#"{"case":"tc1","fp":"00ff"}"#, 0).is_err());
    assert!(parse_job_line(r#"{"mtx":"a.mtx","fp":"00ff"}"#, 0).is_err());

    // Unparseable fingerprints.
    assert!(parse_job_line(r#"{"fp":"xyzzy"}"#, 0).is_err());
    assert!(parse_job_line(r#"{"fp":""}"#, 0).is_err());

    // Fault injection cannot ride on a batch job.
    assert!(parse_job_line(r#"{"case":"tc1","batch":4,"kill_rank":1}"#, 0).is_err());

    // Structural garbage: truncated objects, bare values, empty input.
    for line in ["{", "{\"case\":", "", "42", "[1,2,3]", "{\"case\":\"tc1\""] {
        assert!(parse_job_line(line, 0).is_err(), "accepted {line:?}");
    }
}

#[test]
fn unknown_precond_rejection_names_the_valid_set() {
    // An unrecognized rung must come back as a structured rejection that
    // echoes the offender and lists every accepted name, so a client can
    // fix the job without reading the source.
    for bad in ["schur3", "ILU", "schurml2", "block"] {
        let line = format!(r#"{{"case":"tc1","precond":"{bad}"}}"#);
        let err = parse_job_line(&line, 0).unwrap_err().to_string();
        assert!(err.contains(&format!("{bad:?}")), "missing offender: {err}");
        for valid in [
            "block1", "block2", "schur1", "schur2", "schurml", "overlap", "jacobi", "auto",
        ] {
            assert!(err.contains(valid), "valid set missing {valid}: {err}");
        }
    }
}

#[test]
fn schurml_jobs_honour_levels_and_rank_keys() {
    // Bare "schurml" takes the documented defaults…
    let job = parse_job_line(r#"{"case":"tc1","precond":"schurml"}"#, 0).expect("parses");
    assert_eq!(job.session.precond, PrecondKind::schurml_default());

    // …and explicit knobs override them.
    let job = parse_job_line(
        r#"{"case":"tc1","precond":"schurml","levels":3,"rank":4}"#,
        0,
    )
    .expect("parses");
    assert_eq!(
        job.session.precond,
        PrecondKind::SchurML { levels: 3, rank: 4 }
    );

    // The knobs are inert on other rungs.
    let job = parse_job_line(
        r#"{"case":"tc1","precond":"schur2","levels":3,"rank":4}"#,
        0,
    )
    .expect("parses");
    assert_eq!(job.session.precond, PrecondKind::Schur2);
}

#[test]
fn duplicate_keys_resolve_deterministically() {
    // The flat parser is last-wins on duplicates; a client repeating a key
    // gets a deterministic job, not a panic or an ambiguous one.
    let job = parse_job_line(r#"{"case":"tc1","ranks":2,"ranks":3}"#, 0).expect("parses");
    assert_eq!(job.session.n_ranks, 3);
    let job = parse_job_line(r#"{"id":"a","id":"b","case":"tc1"}"#, 0).expect("parses");
    assert_eq!(job.id, "b");
}

#[test]
fn oversized_lines_reject_before_parsing() {
    let huge = format!(
        r#"{{"case":"tc1","pad":"{}"}}"#,
        "x".repeat(MAX_JOB_LINE_BYTES)
    );
    let err = parse_job_line(&huge, 0).unwrap_err();
    assert!(err.to_string().contains("byte limit"), "got {err}");

    // At the limit exactly the guard stays out of the way.
    let body = r#"{"case":"tc1","pad":"PAD"}"#;
    let at_limit = body.replace("PAD", &"y".repeat(MAX_JOB_LINE_BYTES - body.len() + 3));
    assert_eq!(at_limit.len(), MAX_JOB_LINE_BYTES);
    assert!(parse_job_line(&at_limit, 0).is_ok());
}

#[test]
fn non_utf8_and_control_bytes_never_panic() {
    // The wire layer lossy-decodes raw bytes before parsing, so the parser
    // sees replacement characters and stray control bytes. Either outcome
    // (structured error or a parsed job) is fine; a panic is not.
    let lossy = String::from_utf8_lossy(b"{\"id\":\"\xff\xfe\",\"case\":\"tc1\"}").into_owned();
    let _ = parse_job_line(&lossy, 0);
    let _ = parse_job_line("{\"id\":\"\u{fffd}\u{1}\",\"case\":\"tc1\"}", 0);
    let _ = parse_job_line("{\"\u{0}\":1,\"case\":\"tc1\"}", 0);

    // Type-mismatched values fall back to defaults instead of exploding.
    let job = parse_job_line(r#"{"case":"tc1","ranks":"two"}"#, 0).expect("parses");
    assert_eq!(job.session.n_ranks, 4);
}

#[test]
fn auto_precond_round_trips_from_line_to_result() {
    // "precond":"auto" (any case) flags the job and leaves a placeholder
    // rung for the tuner to replace.
    let job = parse_job_line(r#"{"case":"tc1","precond":"AUTO","ranks":2}"#, 0).expect("parses");
    assert!(job.auto_precond);
    assert_eq!(job.session.precond, PrecondKind::Schur1);
    assert!(matches!(job.problem, ProblemSpec::Case { .. }));

    // Through a live service the result reports the rung actually used and
    // carries the auto marker back out on the wire format.
    let service = SolveService::start(ServiceConfig {
        pool_size: 1,
        queue_capacity: 4,
        cache_capacity: 2,
    })
    .expect("valid config");
    let result = service.submit_solve(job).expect("queued").wait();
    assert!(result.ok && result.converged, "auto job failed: {result:?}");
    assert!(result.auto);
    let line = result.to_json();
    let fields = parapre_trace::flatjson::parse_flat_object(&line).expect("result line parses");
    assert_eq!(
        fields.get("auto").and_then(|v| v.as_bool()),
        Some(true),
        "line {line}"
    );
    let reported = fields
        .get("precond")
        .and_then(|v| v.as_str())
        .expect("rung reported");
    assert!(PrecondKind::parse(reported).is_some(), "rung {reported:?}");
    assert!(service.tuner().stats().records >= 1);
    service.shutdown();
}

#[test]
fn cache_evicts_least_recently_used_under_pressure() {
    let case = build_case_sized(CaseId::Tc1, 4);
    let cfg = SessionConfig::paper(PrecondKind::Block1, 2);
    let builds = AtomicUsize::new(0);
    let build = || {
        builds.fetch_add(1, Ordering::SeqCst);
        SolverSession::from_case(&case, &cfg)
    };
    let key = |fp: u64| SessionKey::new(fp, &cfg);

    let cache = SessionCache::new(2);
    // Fill: A then B, then touch A so B is the least recently used.
    assert!(!cache.get_or_build(key(0xa), build).expect("build a").1);
    assert!(!cache.get_or_build(key(0xb), build).expect("build b").1);
    assert!(cache.get_or_build(key(0xa), build).expect("touch a").1);

    // C overflows the capacity: B (not A) must be the one evicted.
    assert!(!cache.get_or_build(key(0xc), build).expect("build c").1);
    assert_eq!(cache.stats().evictions, 1);
    assert!(
        cache.get_or_build(key(0xa), build).expect("a again").1,
        "A was touched after B and must have survived the eviction"
    );
    assert!(
        !cache.get_or_build(key(0xb), build).expect("b again").1,
        "B was the LRU entry and must have been evicted"
    );

    // Rebuilding B overflowed again; the LRU victim this time is C.
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.evictions, stats.len),
        (2, 4, 2, 2)
    );
    assert_eq!(builds.load(Ordering::SeqCst) as u64, stats.misses);
    assert!(cache.get_or_build(key(0xa), build).expect("a resident").1);
    assert!(cache.get_or_build(key(0xb), build).expect("b resident").1);
    assert!(!cache.get_or_build(key(0xc), build).expect("c evicted").1);
}

#[test]
fn batch_solve_matches_sequential_solves() {
    let case = build_case_sized(CaseId::Tc1, 8);
    let cfg = SessionConfig::paper(PrecondKind::Schur1, 2);
    let session = SolverSession::from_case(&case, &cfg).expect("session builds");
    let rhss = batch_rhs(&case.sys.b, 4);

    let sequential: Vec<_> = rhss
        .iter()
        .map(|b| session.solve(b).expect("sequential solve"))
        .collect();
    let batch = session
        .solve_batch(&rhss, None, BatchOptions::default())
        .expect("batch solve");
    assert_eq!(batch.reports.len(), rhss.len());

    // Cold-started batch solves retrace the sequential trajectories: same
    // factors, same zero guess, same arithmetic order.
    for (j, (seq, bat)) in sequential.iter().zip(&batch.reports).enumerate() {
        assert!(seq.converged && bat.converged, "rhs {j} must converge");
        assert_eq!(seq.iterations, bat.iterations, "rhs {j} iteration drift");
        assert!(
            (seq.final_relres - bat.final_relres).abs() <= 1e-12 * seq.final_relres.max(1e-30),
            "rhs {j}: sequential relres {} vs batch {}",
            seq.final_relres,
            bat.final_relres
        );
        assert!(
            bat.true_relres < 1e-4,
            "rhs {j} true relres {}",
            bat.true_relres
        );
    }

    // Warm-started batches still meet the residual target on every RHS.
    let warm = session
        .solve_batch(&rhss, None, BatchOptions { warm_start: true })
        .expect("warm batch");
    assert!(warm.all_converged());
    for rep in &warm.reports {
        assert!(rep.true_relres < 1e-4);
    }
}
