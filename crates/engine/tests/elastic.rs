//! Elastic-topology robustness: migrated sessions must key differently in
//! the cache (no stale-factor resurrection across P→P′→P round trips),
//! mid-migration rank kills must leave the old topology serving bitwise
//! identical answers, and migrated factors must be indistinguishable from
//! a cold rebuild on the same partition.

use parapre_core::{build_case_sized, CaseId, PrecondKind};
use parapre_engine::{
    parse_job_line, ServiceConfig, SessionCache, SessionConfig, SessionKey, SolveService,
    SolverSession,
};
use parapre_resilience::elastic::plan_migration;
use parapre_resilience::{FaultConfig, FaultPlan};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const P: usize = 4;

/// A small TC1 session plus its right-hand side, partitioned by the
/// session's own scheme so `owner()` is the seed-derived map.
fn skewable_session() -> (SolverSession, Vec<f64>) {
    let case = build_case_sized(CaseId::Tc1, 8);
    let cfg = SessionConfig::paper(PrecondKind::Block1, P);
    let session = SolverSession::from_case(&case, &cfg).expect("session builds");
    (session, case.sys.b.clone())
}

/// A refined owner map: shifts a slice of rank 1's rows onto rank 0,
/// leaving every rank non-empty. Mirrors what online refinement does.
fn refined_owner(owner: &[u32]) -> Vec<u32> {
    let mut new_owner = owner.to_vec();
    let of_one: Vec<usize> = (0..owner.len()).filter(|&i| owner[i] == 1).collect();
    assert!(of_one.len() >= 4, "rank 1 too small to refine");
    for &i in &of_one[..of_one.len() / 2] {
        new_owner[i] = 0;
    }
    new_owner
}

#[test]
fn topology_round_trip_never_resurrects_stale_cache_entries() {
    let (session, b) = skewable_session();
    let a = session.matrix().clone();
    let original_owner = session.owner().to_vec();
    let x_original = session.solve(&b).expect("solve").x;

    // P → P′: refine, migrate, and key both generations.
    let new_owner = refined_owner(&original_owner);
    let plan = plan_migration(&a, &original_owner, P, &new_owner, P).expect("plan");
    let (migrated, rep) = session.migrate(&plan).expect("migration lands");
    assert!(rep.reused_ranks >= 1, "local refinement must reuse ranks");
    assert!(rep.moved_rows > 0);

    let key_old = SessionKey::new(session.fingerprint(), session.config());
    let key_new = SessionKey::new(migrated.fingerprint(), migrated.config());
    assert!(
        migrated.config().partition_tag.is_some(),
        "migrated sessions must carry a topology tag"
    );
    assert_ne!(
        key_old, key_new,
        "a migrated topology must never shadow the seed-derived entry"
    );

    // P′ → P: migrate back to the original map. The key must differ from
    // *both* earlier generations — the round-trip session has a bespoke
    // owner map (tagged), the original had a seed-derived one (untagged).
    let plan_back = plan_migration(&a, migrated.owner(), P, &original_owner, P).expect("plan back");
    let (back, _) = migrated.migrate(&plan_back).expect("migration back lands");
    let key_back = SessionKey::new(back.fingerprint(), back.config());
    assert_ne!(key_back, key_new, "P′ and round-trip P key identically");
    assert_ne!(
        key_back, key_old,
        "tagged round-trip topology must not collide with the untagged original"
    );

    // Same matrix, same partition, same config ⇒ the round-trip session
    // must retrace the original answer bitwise.
    assert_eq!(back.owner(), &original_owner[..]);
    let x_back = back.solve(&b).expect("solve").x;
    assert_eq!(x_original, x_back, "round-trip answers drifted");

    // Cache swap protocol: after a rebalance replaces the entry, a lookup
    // under the *old* key must rebuild, never serve the retired factors.
    let cache = SessionCache::new(4);
    let builds = AtomicUsize::new(0);
    let (first, hit) = cache
        .get_or_build(key_old.clone(), || {
            builds.fetch_add(1, Ordering::SeqCst);
            let cfg = session.config().clone();
            SolverSession::build(&a, &original_owner, &cfg)
        })
        .expect("builds");
    assert!(!hit);
    assert_eq!(first.owner(), &original_owner[..]);
    cache.insert(key_new.clone(), Arc::new(migrated));
    assert!(cache.remove(&key_old), "old entry evicted by the swap");
    let (_, hit) = cache
        .get_or_build(key_old.clone(), || {
            builds.fetch_add(1, Ordering::SeqCst);
            let cfg = session.config().clone();
            SolverSession::build(&a, &original_owner, &cfg)
        })
        .expect("rebuilds");
    assert!(!hit, "stale topology resurrected from the cache");
    assert_eq!(builds.load(Ordering::SeqCst), 2);
}

#[test]
fn identity_plan_reuses_every_rank_and_is_bitwise_stable() {
    let (session, b) = skewable_session();
    let owner = session.owner().to_vec();
    let plan = plan_migration(session.matrix(), &owner, P, &owner, P).expect("plan");
    assert!(plan.is_identity());
    let (migrated, rep) = session.migrate(&plan).expect("identity migration lands");
    assert_eq!(rep.reused_ranks, P, "identity plan must reuse every rank");
    assert_eq!(rep.rebuilt_ranks, 0);
    assert_eq!(rep.moved_rows, 0);
    let x_old = session.solve(&b).expect("solve").x;
    let x_new = migrated.solve(&b).expect("solve").x;
    assert_eq!(x_old, x_new, "identity migration changed answers");
}

#[test]
fn rank_kill_mid_migration_aborts_and_old_topology_keeps_serving() {
    let (session, b) = skewable_session();
    let owner = session.owner().to_vec();
    let new_owner = refined_owner(&owner);
    let plan = plan_migration(session.matrix(), &owner, P, &new_owner, P).expect("plan");

    let before = session.solve(&b).expect("solve").x;
    // Rank 1 dies at its very first send inside the migration universe
    // (the topology-digest vote): the whole migration must abort.
    let hook: Arc<dyn parapre_mpisim::FaultHook> =
        Arc::new(FaultPlan::new(FaultConfig::kill_once(1, 0)));
    let err = session.migrate_opts(&plan, None, Some(Arc::clone(&hook)));
    assert!(err.is_err(), "a killed rank must abort the migration");

    // The old topology was never touched: it keeps serving the exact same
    // bits, and a same-seed rerun of the chaos aborts again.
    let after = session.solve(&b).expect("old topology serves").x;
    assert_eq!(before, after, "abort corrupted the serving session");
    let hook2: Arc<dyn parapre_mpisim::FaultHook> =
        Arc::new(FaultPlan::new(FaultConfig::kill_once(1, 0)));
    assert!(session.migrate_opts(&plan, None, Some(hook2)).is_err());

    // And the same plan still lands once the fault is gone.
    let (migrated, _) = session.migrate(&plan).expect("clean retry lands");
    assert_eq!(migrated.owner(), &new_owner[..]);
}

#[test]
fn migrated_factors_match_cold_rebuild_and_carry_warm_start() {
    let (session, b) = skewable_session();
    let owner = session.owner().to_vec();
    let new_owner = refined_owner(&owner);
    let plan = plan_migration(session.matrix(), &owner, P, &new_owner, P).expect("plan");

    let x_prev = session.solve(&b).expect("solve").x;
    let (migrated, rep) = session
        .migrate_opts(&plan, Some(&x_prev), None)
        .expect("migration lands");
    assert_eq!(migrated.warm_start(), Some(&x_prev[..]));
    assert!(
        rep.probe_relerr <= 1e-10,
        "probe relerr {}",
        rep.probe_relerr
    );

    // Migration must be invisible numerically: the migrated session and a
    // cold rebuild on the same partition retrace each other bitwise.
    let cold =
        SolverSession::build(session.matrix(), &new_owner, session.config()).expect("cold rebuild");
    let zeros = vec![0.0; b.len()];
    let mig_rep = migrated.solve_with_guess(&b, &zeros).expect("solve");
    let cold_rep = cold.solve_with_guess(&b, &zeros).expect("solve");
    assert_eq!(mig_rep.iterations, cold_rep.iterations);
    assert_eq!(
        mig_rep.x, cold_rep.x,
        "migrated factors drifted from cold rebuild"
    );

    // The carried warm start (the previous solution) seeds guess-less
    // solves: convergence from it can only be faster than from zero.
    let warm = migrated.solve(&b).expect("warm solve");
    assert!(warm.converged);
    assert!(
        warm.iterations <= cold_rep.iterations,
        "warm start ({} it) slower than cold start ({} it)",
        warm.iterations,
        cold_rep.iterations
    );
}

#[test]
fn deadline_ms_parses_strictly_and_rides_the_job() {
    let job = parse_job_line(r#"{"case":"tc1","deadline_ms":250}"#, 0).expect("parses");
    assert_eq!(job.deadline_ms, Some(250));
    let job = parse_job_line(r#"{"case":"tc1"}"#, 0).expect("parses");
    assert_eq!(job.deadline_ms, None);
    for bad in [
        r#"{"case":"tc1","deadline_ms":0}"#,
        r#"{"case":"tc1","deadline_ms":-5}"#,
        r#"{"case":"tc1","deadline_ms":"soon"}"#,
        r#"{"case":"tc1","deadline_ms":null}"#,
    ] {
        let err = parse_job_line(bad, 0).unwrap_err().to_string();
        assert!(err.contains("deadline_ms"), "line {bad}: {err}");
    }
}

#[test]
fn queued_past_deadline_jobs_reject_with_structured_timeout() {
    // One worker, so the deadline job sits in the queue behind a slow
    // multi-repeat job and expires before a worker ever picks it up.
    let service = SolveService::start(ServiceConfig {
        pool_size: 1,
        queue_capacity: 4,
        cache_capacity: 2,
    })
    .expect("valid config");
    let slow = parse_job_line(r#"{"id":"slow","case":"tc1","ranks":2,"repeat":5}"#, 0).unwrap();
    let doomed = parse_job_line(
        r#"{"id":"doomed","case":"tc1","ranks":2,"deadline_ms":1}"#,
        0,
    )
    .unwrap();
    let t_slow = service.submit_solve(slow).expect("queued");
    let t_doomed = service.submit_solve(doomed).expect("queued");

    let slow_result = t_slow.wait();
    assert!(slow_result.ok, "undeadlined job must land: {slow_result:?}");
    let doomed_result = t_doomed.wait();
    assert!(!doomed_result.ok, "expired job must not run");
    assert_eq!(doomed_result.error_kind.as_deref(), Some("timeout"));
    let msg = doomed_result.error.as_deref().unwrap_or("");
    assert!(msg.contains("deadline exceeded"), "got {msg:?}");

    // The structured kind survives the wire format.
    let line = doomed_result.to_json();
    let fields = parapre_trace::flatjson::parse_flat_object(&line).expect("result parses");
    assert_eq!(
        fields.get("error_kind").and_then(|v| v.as_str()),
        Some("timeout"),
        "line {line}"
    );
    service.shutdown();
}
