//! Scheduler behavior: bounded concurrency, deterministic backpressure,
//! panic containment, and cache reuse across jobs.

use parapre_engine::{parse_job_line, Job, ServiceConfig, SolveService, SubmitError};
use std::sync::mpsc::channel;
use std::sync::{Arc, Barrier};

fn blocking_job(
    id: &str,
) -> (
    Job,
    std::sync::mpsc::Receiver<()>,
    std::sync::mpsc::Sender<()>,
) {
    let (started_tx, started_rx) = channel();
    let (release_tx, release_rx) = channel::<()>();
    let job = Job::Custom {
        id: id.to_string(),
        run: Box::new(move || {
            started_tx.send(()).expect("test alive");
            // Hold the worker slot until the test releases it.
            let _ = release_rx.recv();
            Ok(())
        }),
    };
    (job, started_rx, release_tx)
}

#[test]
fn full_queue_rejects_with_backpressure() {
    let service = SolveService::start(ServiceConfig {
        pool_size: 1,
        queue_capacity: 1,
        cache_capacity: 1,
    })
    .expect("valid config");

    // Occupy the single worker, deterministically.
    let (job1, started, release) = blocking_job("blocker");
    let t1 = service.submit(job1).expect("first job accepted");
    started.recv().expect("blocker is running");

    // Worker busy, queue empty: second job queues.
    let (job2, _started2, release2) = blocking_job("queued");
    let t2 = service.submit(job2).expect("second job queues");

    // Queue full: third job must be rejected, not buffered.
    let (job3, _s3, _r3) = blocking_job("rejected");
    match service.submit(job3) {
        Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 1),
        other => panic!("expected QueueFull, got {:?}", other.map(|t| t.id).err()),
    }

    release.send(()).expect("release blocker");
    release2.send(()).expect("release queued job");
    assert!(t1.wait().ok);
    assert!(t2.wait().ok);

    // With the pool drained, submissions are accepted again.
    let (job4, started4, release4) = blocking_job("after");
    let t4 = service.submit(job4).expect("accepted after drain");
    started4.recv().expect("runs");
    release4.send(()).expect("release");
    assert!(t4.wait().ok);
}

#[test]
fn pool_runs_jobs_concurrently_and_bounded() {
    let pool = 4;
    let service = SolveService::start(ServiceConfig {
        pool_size: pool,
        queue_capacity: 16,
        cache_capacity: 1,
    })
    .expect("valid config");
    // All `pool` jobs rendezvous at one barrier: passing it proves they ran
    // simultaneously, so peak concurrency is exactly the pool size.
    let barrier = Arc::new(Barrier::new(pool));
    let tickets: Vec<_> = (0..pool)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            service
                .submit(Job::Custom {
                    id: format!("sync-{i}"),
                    run: Box::new(move || {
                        barrier.wait();
                        Ok(())
                    }),
                })
                .expect("submit")
        })
        .collect();
    for t in tickets {
        assert!(t.wait().ok);
    }
    assert_eq!(service.peak_concurrency(), pool);

    // Twice as many jobs as workers never exceed the pool bound.
    let tickets: Vec<_> = (0..2 * pool)
        .map(|i| {
            service
                .submit(Job::Custom {
                    id: format!("burst-{i}"),
                    run: Box::new(|| Ok(())),
                })
                .expect("submit")
        })
        .collect();
    for t in tickets {
        assert!(t.wait().ok);
    }
    assert!(service.peak_concurrency() <= pool);
}

#[test]
fn panicking_job_fails_without_poisoning_the_worker() {
    let service = SolveService::start(ServiceConfig {
        pool_size: 1,
        queue_capacity: 4,
        cache_capacity: 1,
    })
    .expect("valid config");
    let bad = service
        .submit(Job::Custom {
            id: "bad".into(),
            run: Box::new(|| panic!("intentional test panic")),
        })
        .expect("submit");
    let result = bad.wait();
    assert!(!result.ok);
    assert!(
        result
            .error
            .as_deref()
            .unwrap_or("")
            .contains("intentional"),
        "panic message surfaces in the result: {:?}",
        result.error
    );

    // The same (sole) worker keeps serving.
    let good = service
        .submit(Job::Custom {
            id: "good".into(),
            run: Box::new(|| Ok(())),
        })
        .expect("submit");
    assert!(good.wait().ok);
}

#[test]
fn failing_solve_job_reports_instead_of_crashing() {
    let service = SolveService::start(ServiceConfig::default()).expect("valid config");
    let job = parse_job_line(r#"{"id":"ghost","mtx":"/nonexistent/a.mtx","ranks":2}"#, 0)
        .expect("parses");
    let result = service.submit_solve(job).expect("submit").wait();
    assert!(!result.ok);
    assert!(result.error.is_some());
}

#[test]
fn concurrent_solve_jobs_converge_and_share_the_cache() {
    let service = SolveService::start(ServiceConfig {
        pool_size: 4,
        queue_capacity: 16,
        cache_capacity: 4,
    })
    .expect("valid config");
    // Four identical jobs in flight at once: single-flight building means
    // exactly one factorization; everyone else hits.
    let line = r#"{"id":"j","case":"tc1","size":"tiny","precond":"schur1","ranks":2}"#;
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            let mut job = parse_job_line(line, i).expect("parses");
            job.id = format!("j{i}");
            service.submit_solve(job).expect("submit")
        })
        .collect();
    for t in tickets {
        let r = t.wait();
        assert!(r.ok, "{:?}", r.error);
        assert!(r.converged, "job {} did not converge", r.id);
        assert!(r.true_relres <= 1e-5);
    }
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "single-flight: one build for four jobs");
    assert_eq!(stats.hits, 3);
    assert!(service.peak_concurrency() <= 4);

    // A repeat-solve job on the warm cache: hit, zero setup attributed.
    let mut job = parse_job_line(line, 9).expect("parses");
    job.repeat = 3;
    let r = service.submit_solve(job).expect("submit").wait();
    assert!(r.ok && r.converged && r.cache_hit);
    assert_eq!(r.iterations.len(), 3);
    assert_eq!(r.setup_seconds, 0.0);
    assert_eq!(
        r.iterations[0], r.iterations[2],
        "repeats against cached factors are deterministic"
    );
}

#[test]
fn shutdown_drains_queued_jobs() {
    let service = SolveService::start(ServiceConfig {
        pool_size: 1,
        queue_capacity: 8,
        cache_capacity: 1,
    })
    .expect("valid config");
    let tickets: Vec<_> = (0..5)
        .map(|i| {
            service
                .submit(Job::Custom {
                    id: format!("drain-{i}"),
                    run: Box::new(|| Ok(())),
                })
                .expect("submit")
        })
        .collect();
    service.shutdown();
    for t in tickets {
        assert!(t.wait().ok, "queued jobs complete before shutdown");
    }
}

#[test]
fn wait_timeout_returns_ticket_while_running_and_result_after() {
    use std::time::Duration;
    let service = SolveService::start(ServiceConfig {
        pool_size: 1,
        queue_capacity: 4,
        cache_capacity: 1,
    })
    .expect("valid config");
    let (job, started, release) = blocking_job("slow");
    let ticket = service.submit(job).expect("accepted");
    started.recv().expect("job running");

    // Still running: the timeout elapses and the ticket comes back alive.
    let ticket = match ticket.wait_timeout(Duration::from_millis(20)) {
        Err(t) => t,
        Ok(r) => panic!("job should still be running, got result ok={}", r.ok),
    };
    assert_eq!(ticket.id, "slow");

    // Released: the same ticket now redeems normally.
    release.send(()).expect("release");
    let result = ticket
        .wait_timeout(Duration::from_secs(10))
        .unwrap_or_else(|_| panic!("finishes well within the timeout"));
    assert!(result.ok);
    assert_eq!(result.id, "slow");
}
