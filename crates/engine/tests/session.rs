//! Session correctness: cached-factor solves must be bit-for-bit the same
//! iteration trajectories as fresh one-shot solves, and the hot path must
//! perform zero factorization work.

use parapre_core::{
    build_case, build_dist_precond, partition_case_with, CaseId, CaseSize, PrecondKind,
};
use parapre_dist::{scatter_vector, DistGmres, DistMatrix};
use parapre_engine::{SessionCache, SessionConfig, SessionKey, SolverSession};
use parapre_mpisim::Universe;
use std::sync::Arc;

const P: usize = 4;

fn tc1_session(precond: PrecondKind) -> (parapre_core::AssembledCase, SolverSession) {
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    let cfg = SessionConfig::paper(precond, P);
    let session = SolverSession::from_case(&case, &cfg).expect("session builds");
    (case, session)
}

/// A one-shot reference solve that rebuilds everything from scratch, the way
/// the experiment runner does: fresh universe, fresh distribution, fresh
/// factorization. Returns the outer iteration count.
fn one_shot_iterations(case: &parapre_core::AssembledCase, cfg: &SessionConfig) -> usize {
    let node_part = partition_case_with(case, cfg.scheme, cfg.n_ranks, cfg.partition_seed);
    let owner = case.dof_owner(&node_part.owner);
    let a = &case.sys.a;
    let b = &case.sys.b;
    let x0 = &case.x0;
    let outs = Universe::run(cfg.n_ranks, |comm| {
        let dm = DistMatrix::from_global(a, &owner, comm.rank(), cfg.n_ranks);
        let precond = build_dist_precond(cfg.precond, &dm, comm, a, &cfg.params);
        let b_loc = scatter_vector(&dm.layout, b);
        let mut x = scatter_vector(&dm.layout, x0);
        DistGmres::new(cfg.gmres).solve(comm, &dm, &precond, &b_loc, &mut x)
    });
    outs[0].iterations
}

#[test]
fn session_solves_match_fresh_one_shots_for_every_preconditioner() {
    for precond in [
        PrecondKind::Block1,
        PrecondKind::Block2,
        PrecondKind::Schur1,
        PrecondKind::Schur2,
    ] {
        let (case, session) = tc1_session(precond);
        let reference = one_shot_iterations(&case, session.config());
        // Several solves of the same system against the cached factors:
        // every one must retrace the reference trajectory exactly.
        for repeat in 0..3 {
            let rep = session
                .solve_with_guess(&case.sys.b, &case.x0)
                .expect("solve");
            assert!(rep.converged, "{precond:?} repeat {repeat} must converge");
            assert_eq!(
                rep.iterations, reference,
                "{precond:?} repeat {repeat}: cached-session iterations drifted"
            );
            assert!(
                rep.true_relres <= 1e-5,
                "{precond:?} true residual too large: {}",
                rep.true_relres
            );
        }
    }
}

#[test]
fn hot_path_records_no_factorization_spans() {
    let (case, session) = tc1_session(PrecondKind::Schur1);
    let (rep, traces) = session
        .solve_traced(&case.sys.b, Some(&case.x0))
        .expect("traced solve");
    assert!(rep.converged);
    assert_eq!(traces.len(), P, "one trace per rank");
    let summaries: Vec<_> = traces.iter().map(|t| t.summary()).collect();
    let merged = parapre_trace::TraceSummary::merge(&summaries);
    assert!(
        merged.phase(parapre_trace::phase::FACTOR).is_none(),
        "a solve on a cached session must not factor"
    );
    assert!(
        merged.phase(parapre_trace::phase::SETUP).is_none(),
        "a solve on a cached session must not re-run setup"
    );
    let apply = merged
        .phase(parapre_trace::phase::PRECOND_APPLY)
        .expect("preconditioner applications are traced");
    assert!(apply.calls > 0);
}

#[test]
fn multiple_right_hand_sides_reuse_one_factorization() {
    let (case, session) = tc1_session(PrecondKind::Block2);
    let n = session.n_unknowns();
    // Natural rhs, all-ones, and a row-sum rhs (exact solution x = 1).
    let ones = vec![1.0; n];
    let rowsum = case.sys.a.mul_vec(&ones);
    for b in [case.sys.b.clone(), ones.clone(), rowsum] {
        let rep = session.solve(&b).expect("solve");
        assert!(rep.converged);
        assert!(rep.true_relres <= 1e-5);
    }
    let rep = session.solve(&case.sys.a.mul_vec(&ones)).expect("solve");
    let err = rep
        .x
        .iter()
        .map(|xi| (xi - 1.0).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-4, "row-sum rhs must recover x = 1, err {err}");
}

#[test]
fn matrix_sessions_solve_general_systems() {
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    let cfg = SessionConfig::paper(PrecondKind::Block1, 2);
    let session = SolverSession::from_matrix(&case.sys.a, &cfg).expect("session builds");
    let b = case.sys.a.mul_vec(&vec![1.0; session.n_unknowns()]);
    let rep = session.solve(&b).expect("solve");
    assert!(rep.converged);
    assert!(rep.true_relres <= 1e-5);
}

#[test]
fn cache_hits_share_sessions_and_count() {
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    let cfg = SessionConfig::paper(PrecondKind::Schur1, P);
    let fp = case.sys.a.fingerprint();
    let cache = SessionCache::new(2);

    let build = || SolverSession::from_case(&case, &cfg);
    let (first, hit1) = cache
        .get_or_build(SessionKey::new(fp, &cfg), build)
        .unwrap();
    let (second, hit2) = cache
        .get_or_build(SessionKey::new(fp, &cfg), build)
        .unwrap();
    assert!(!hit1 && hit2);
    assert!(Arc::ptr_eq(&first, &second), "hits must share the session");

    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
    assert_eq!(stats.len, 1);
}

#[test]
fn cache_evicts_least_recently_used() {
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    let fp = case.sys.a.fingerprint();
    let cache = SessionCache::new(2);
    let cfg_of = |p: PrecondKind| SessionConfig::paper(p, 2);

    for p in [PrecondKind::Block1, PrecondKind::Block2] {
        let cfg = cfg_of(p);
        cache
            .get_or_build(SessionKey::new(fp, &cfg), || {
                SolverSession::from_case(&case, &cfg)
            })
            .unwrap();
    }
    // Touch block1 so block2 is the LRU victim when schur1 arrives.
    let cfg1 = cfg_of(PrecondKind::Block1);
    let (_, hit) = cache
        .get_or_build(SessionKey::new(fp, &cfg1), || {
            SolverSession::from_case(&case, &cfg1)
        })
        .unwrap();
    assert!(hit);
    let cfg3 = cfg_of(PrecondKind::Schur1);
    cache
        .get_or_build(SessionKey::new(fp, &cfg3), || {
            SolverSession::from_case(&case, &cfg3)
        })
        .unwrap();

    let stats = cache.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.len, 2);
    // block1 survived (hit), block2 was evicted (miss on re-request).
    let (_, hit1) = cache
        .get_or_build(SessionKey::new(fp, &cfg1), || {
            SolverSession::from_case(&case, &cfg1)
        })
        .unwrap();
    assert!(hit1, "recently used entry must survive eviction");
    let cfg2 = cfg_of(PrecondKind::Block2);
    let (_, hit2) = cache
        .get_or_build(SessionKey::new(fp, &cfg2), || {
            SolverSession::from_case(&case, &cfg2)
        })
        .unwrap();
    assert!(!hit2, "LRU entry must have been evicted");
}

#[test]
fn different_matrices_key_differently() {
    let small = build_case(CaseId::Tc1, CaseSize::Tiny);
    let cfg = SessionConfig::paper(PrecondKind::Block1, 2);
    let key_a = SessionKey::new(small.sys.a.fingerprint(), &cfg);
    let mut other = SessionConfig::paper(PrecondKind::Block1, 2);
    other.gmres.rel_tol = 1e-8;
    let key_b = SessionKey::new(small.sys.a.fingerprint(), &other);
    assert_ne!(key_a, key_b, "solver tolerance is part of the cache key");
}
