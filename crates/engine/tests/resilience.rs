//! Chaos tests: solves on TC1–TC4 with one injected rank kill must
//! complete — via retry (transient kill) or via the degraded reduced
//! system (persistent kill) — and report residuals honestly.

use parapre_core::{build_case, CaseId, CaseSize, PrecondKind};
use parapre_dist::CheckpointCtx;
use parapre_engine::{solve_resilient, RecoveryPolicy, SessionConfig, SolverSession};
use parapre_mpisim::FaultHook;
use parapre_resilience::{CheckpointStore, FaultConfig, FaultPlan, RankOp};
use std::sync::Arc;
use std::time::Duration;

const P: usize = 4;

fn tc_session(id: CaseId) -> (SolverSession, Vec<f64>, Vec<f64>) {
    let case = build_case(id, CaseSize::Tiny);
    let mut cfg = SessionConfig::paper(PrecondKind::Block1, P);
    // Kill tests make peers wait out the receive timeout; keep it short.
    cfg.recv_timeout = Duration::from_millis(400);
    let session = SolverSession::from_case(&case, &cfg).expect("setup");
    (session, case.sys.b.clone(), case.x0.clone())
}

fn all_cases() -> [CaseId; 4] {
    [CaseId::Tc1, CaseId::Tc2, CaseId::Tc3, CaseId::Tc4]
}

#[test]
fn transient_kill_recovers_via_retry_on_tc1_tc4() {
    for id in all_cases() {
        let (session, b, x0) = tc_session(id);
        // `once: true` (default): the kill fires on the first attempt only.
        let plan = Arc::new(FaultPlan::new(FaultConfig::kill_once(1, 2)));
        let hook: Arc<dyn FaultHook> = plan.clone();
        let (rep, out) = solve_resilient(
            &session,
            &b,
            Some(&x0),
            Some(hook),
            &RecoveryPolicy::default(),
        )
        .unwrap_or_else(|(e, _)| panic!("{id:?}: retry should recover: {e}"));
        assert_eq!(out.retries, 1, "{id:?}: exactly one retry");
        assert!(!out.degraded, "{id:?}: no degradation needed");
        assert_eq!(out.dead_ranks, vec![1], "{id:?}: the kill was observed");
        assert!(rep.converged, "{id:?}: converged after retry");
        assert!(
            rep.true_relres <= 2e-6,
            "{id:?}: true residual {} meets the 1e-6 target",
            rep.true_relres
        );
    }
}

#[test]
fn persistent_kill_degrades_on_tc1_tc4() {
    for id in all_cases() {
        let (session, b, x0) = tc_session(id);
        // Persistent kill: every attempt dies, so retries are useless and
        // the ladder must fall through to the degraded reduced system.
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            once: false,
            kill: vec![RankOp { rank: 1, op: 2 }],
            ..Default::default()
        }));
        let hook: Arc<dyn FaultHook> = plan.clone();
        let policy = RecoveryPolicy {
            retry_budget: 1,
            backoff_ms: 1,
            ..Default::default()
        };
        let (rep, out) = solve_resilient(&session, &b, Some(&x0), Some(hook), &policy)
            .unwrap_or_else(|(e, _)| panic!("{id:?}: degraded mode should answer: {e}"));
        assert!(out.degraded, "{id:?}: answered by the degraded path");
        assert_eq!(out.dead_ranks, vec![1]);
        assert!(rep.converged, "{id:?}: reduced system converged");
        // The residual the solver *claims* is the reduced system's, and it
        // must meet the configured tolerance…
        assert!(
            rep.final_relres <= 1e-6,
            "{id:?}: reduced relres {} within claimed tolerance",
            rep.final_relres
        );
        // …while the honest full-system residual is reported separately
        // and does NOT pretend the dead subdomain was solved.
        let full = out
            .degraded_full_relres
            .expect("degraded reports full residual");
        assert_eq!(
            rep.true_relres, full,
            "{id:?}: true_relres is the honest one"
        );
        assert!(full.is_finite());
        assert!(
            full > rep.final_relres,
            "{id:?}: full residual {} exceeds reduced {}",
            full,
            rep.final_relres
        );
    }
}

#[test]
fn checkpoint_resume_reaches_the_same_answer() {
    // No faults here — this pins down the resume semantics: a solve
    // restarted from a mid-flight consistent checkpoint converges to the
    // same answer, with the inherited iterations counted in its report.
    let (session, b, x0) = tc_session(CaseId::Tc1);
    let store = CheckpointStore::new(P);
    let (rep_full, _) = session
        .solve_attempt(
            &b,
            Some(&x0),
            false,
            None,
            Some(CheckpointCtx::fresh(&store)),
        )
        .expect("clean checkpointed solve");
    assert!(rep_full.converged);
    let ck = store.latest_consistent().expect("cycles were checkpointed");
    assert!(ck.iters > 0 && ck.iters <= rep_full.iterations);

    let guess = session.assemble_global(&ck.x);
    let store2 = CheckpointStore::new(P);
    let (rep_resumed, _) = session
        .solve_attempt(
            &b,
            Some(&guess),
            false,
            None,
            Some(CheckpointCtx {
                sink: &store2,
                start_iters: ck.iters,
                start_cycle: ck.cycle,
            }),
        )
        .expect("resumed solve");
    assert!(rep_resumed.converged);
    assert!(
        rep_resumed.iterations >= ck.iters,
        "inherited iterations are counted"
    );
    // Both answers satisfy the same system to the same tolerance.
    assert!(rep_resumed.true_relres <= 2e-6);
}

#[test]
fn late_kill_resumes_from_checkpoint() {
    // Tight tolerance + tiny restart length ⇒ many cycle boundaries, so by
    // the time the kill fires (send op 30) at least one checkpoint exists
    // and the retry must resume mid-solve instead of from zero.
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    let mut cfg = SessionConfig::paper(PrecondKind::Block1, P);
    cfg.recv_timeout = Duration::from_millis(400);
    cfg.gmres.restart = 2;
    cfg.gmres.rel_tol = 1e-8;
    let session = SolverSession::from_case(&case, &cfg).expect("setup");

    let plan = Arc::new(FaultPlan::new(FaultConfig::kill_once(1, 30)));
    let hook: Arc<dyn FaultHook> = plan.clone();
    let (rep, out) = solve_resilient(
        &session,
        &case.sys.b,
        Some(&case.x0),
        Some(hook),
        &RecoveryPolicy::default(),
    )
    .unwrap_or_else(|(e, _)| panic!("retry should recover: {e}"));
    assert_eq!(out.retries, 1, "the kill fired and one retry ran");
    assert!(
        out.resumed_iters > 0,
        "retry resumed from a checkpoint, not from zero"
    );
    assert!(rep.converged);
    assert!(rep.iterations > out.resumed_iters);
}
