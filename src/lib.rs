//! # parapre
//!
//! A from-scratch Rust reproduction of **Cai & Sosonkina, *A Numerical
//! Study of Some Parallel Algebraic Preconditioners* (IPPS 2003)** — a
//! study of parallel block (`Block 1`/`Block 2`) and Schur-complement
//! (`Schur 1`/`Schur 2`) preconditioners for distributed FGMRES on six FEM
//! test problems, plus an additive-Schwarz comparison.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`sparse`] — CSR/COO/dense storage and kernels;
//! * [`transform`] — FFT / DST-I / fast Poisson solvers;
//! * [`grid`] — structured, curvilinear and Delaunay meshes;
//! * [`partition`] — graph / box / RCB partitioners (Metis stand-in);
//! * [`fem`] — P1 assembly of the paper's four PDEs;
//! * [`mpisim`] — the SPMD message-passing runtime (MPI stand-in) with
//!   α–β machine models;
//! * [`krylov`] — sequential GMRES/FGMRES/CG, ILU(0), ILUT, ARMS;
//! * [`metrics`] — live metrics: counters, latency histograms,
//!   convergence-event ring, per-rank load-imbalance reports;
//! * [`dist`] — distributed sparse systems and distributed (F)GMRES;
//! * [`core`] — the paper's preconditioners, test cases and experiment
//!   runner;
//! * [`engine`] — cached solver sessions, batched multi-RHS solves, the
//!   fingerprint-keyed autotuner, and the bounded concurrent solve
//!   service;
//! * [`net`] — `parapre-netd`, the persistent network solve service
//!   (length-framed JSONL over TCP / unix sockets).
//!
//! ## Quickstart
//!
//! ```
//! use parapre::core::{build_case, run_case, CaseId, CaseSize, PrecondKind, RunConfig};
//!
//! // Paper Test Case 1 (2-D Poisson), tiny grid, 4 ranks, Schur 1.
//! let case = build_case(CaseId::Tc1, CaseSize::Tiny);
//! let result = run_case(&case, &RunConfig::paper(PrecondKind::Schur1, 4));
//! assert!(result.converged);
//! println!("{} iterations", result.iterations);
//! ```

#![forbid(unsafe_code)]

pub use parapre_core as core;
pub use parapre_dist as dist;
pub use parapre_engine as engine;
pub use parapre_fem as fem;
pub use parapre_grid as grid;
pub use parapre_krylov as krylov;
pub use parapre_metrics as metrics;
pub use parapre_mpisim as mpisim;
pub use parapre_net as net;
pub use parapre_partition as partition;
pub use parapre_sparse as sparse;
pub use parapre_transform as transform;
