//! Test Case 2 walkthrough (3-D Poisson): scalability across P under the
//! two machine profiles, reproducing the paper's observation that the
//! *simple block* preconditioners win on this well-conditioned 3-D problem
//! while the Schur variants have the most stable iteration counts.
//!
//! ```text
//! cargo run --release --example poisson_cluster
//! ```

use parapre::core::runner::{run_case, RunConfig};
use parapre::core::{build_case, CaseId, CaseSize, PrecondKind};
use parapre::mpisim::MachineModel;

fn main() {
    let case = build_case(CaseId::Tc2, CaseSize::Tiny);
    println!("== {} ==", case.id.name());
    println!(
        "grid: {} ({} unknowns)\n",
        case.grid_desc,
        case.n_unknowns()
    );

    for machine in [MachineModel::linux_cluster(), MachineModel::origin_3800()] {
        println!(
            "machine: {} (alpha = {:.0} us, bw = {:.0} MB/s, load x{})",
            machine.name,
            machine.latency * 1e6,
            1.0 / machine.seconds_per_byte / 1e6,
            machine.load_factor
        );
        println!(
            "{:>4} {:>10} {:>6} {:>12} {:>12}",
            "P", "precond", "#itr", "wall(s)", "model(s)"
        );
        let mut per_kind: std::collections::HashMap<&str, Vec<usize>> = Default::default();
        for p in [2usize, 4, 8] {
            for kind in PrecondKind::ALL {
                let mut cfg = RunConfig::paper(kind, p);
                cfg.machine = machine;
                let res = run_case(&case, &cfg);
                per_kind
                    .entry(kind.label())
                    .or_default()
                    .push(res.iterations);
                println!(
                    "{:>4} {:>10} {:>6} {:>12.3} {:>12.3}",
                    p,
                    kind.label(),
                    if res.converged {
                        res.iterations.to_string()
                    } else {
                        "n.c.".into()
                    },
                    res.wall_seconds,
                    res.modeled_seconds
                );
            }
        }
        // Paper: Schur iteration counts are very stable on this case.
        let spread = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap();
        println!(
            "iteration spread across P: Schur1 = {}, Schur2 = {}, Block1 = {}, Block2 = {}\n",
            spread(&per_kind["Schur 1"]),
            spread(&per_kind["Schur 2"]),
            spread(&per_kind["Block 1"]),
            spread(&per_kind["Block 2"]),
        );
    }
}
