//! Test Case 6 walkthrough: linear elasticity on the quarter ring (paper
//! Fig. 5) — "clearly the toughest [case] for the parallel algebraic
//! preconditioners". Shows the Schur-enhanced preconditioners converging
//! where the simple block preconditioners struggle, and reports the
//! computed displacement field.
//!
//! ```text
//! cargo run --release --example elasticity_ring
//! ```

use parapre::core::runner::{run_case, RunConfig};
use parapre::core::{build_case, CaseId, CaseSize, PrecondKind};
use parapre::dist::{gather_vector, scatter_vector, DistGmres, DistGmresConfig, DistMatrix};
use parapre::mpisim::Universe;
use parapre::partition::partition_graph;

fn main() {
    let case = build_case(CaseId::Tc6, CaseSize::Tiny);
    println!("== {} ==", case.id.name());
    println!(
        "grid: {} ({} unknowns)\n",
        case.grid_desc,
        case.n_unknowns()
    );

    // Give the block preconditioners a *tight* budget, as in the paper's
    // narrative: they have "trouble producing satisfactory convergence".
    println!("{:>10} {:>8} {:>12}", "precond", "#itr", "status");
    let mut iters = std::collections::HashMap::new();
    for kind in PrecondKind::ALL {
        let mut cfg = RunConfig::paper(kind, 4);
        cfg.gmres.max_iters = 400;
        let res = run_case(&case, &cfg);
        iters.insert(kind.label(), (res.iterations, res.converged));
        println!(
            "{:>10} {:>8} {:>12}",
            kind.label(),
            res.iterations,
            if res.converged {
                "converged"
            } else {
                "NOT conv."
            }
        );
    }
    let (s1, _) = iters["Schur 1"];
    let (b1, b1_conv) = iters["Block 1"];
    if !b1_conv || b1 > 2 * s1 {
        println!("\n(as in the paper, the Schur-enhanced preconditioners show a clear advantage)");
    }

    // Solve with Schur 1 and inspect the displacement field.
    let p = 4;
    let part = partition_graph(&case.node_adjacency, p, 1);
    let owner = case.dof_owner(&part.owner);
    let (a, b, x0) = (&case.sys.a, &case.sys.b, &case.x0);
    let owner_ref = &owner;
    let gathered = Universe::run(p, move |comm| {
        let dm = DistMatrix::from_global(a, owner_ref, comm.rank(), p);
        let m = parapre::core::Schur1Precond::build(&dm, Default::default()).unwrap();
        let b_loc = scatter_vector(&dm.layout, b);
        let mut x = scatter_vector(&dm.layout, x0);
        let rep = DistGmres::new(DistGmresConfig {
            max_iters: 600,
            ..Default::default()
        })
        .solve(comm, &dm, &m, &b_loc, &mut x);
        assert!(rep.converged, "Schur 1 must converge on TC6");
        gather_vector(comm, &dm.layout, &x, b.len())
    });
    let u = gathered[0].as_ref().unwrap();

    // Displacement statistics: outward load ⇒ positive radial displacement,
    // u1 = 0 on Γ1 (y = 0), u2 = 0 on Γ2 (x = 0).
    let mut max_radial = 0.0f64;
    for (node, p3) in case.node_coords.iter().enumerate() {
        let (x, y) = (p3[0], p3[1]);
        let r = (x * x + y * y).sqrt();
        let ur = (u[2 * node] * x + u[2 * node + 1] * y) / r;
        max_radial = max_radial.max(ur);
        if y.abs() < 1e-9 {
            assert!(u[2 * node].abs() < 1e-8, "u1 must vanish on Gamma1");
        }
        if x.abs() < 1e-9 {
            assert!(u[2 * node + 1].abs() < 1e-8, "u2 must vanish on Gamma2");
        }
    }
    println!("\nmax radial displacement under unit outward load: {max_radial:.4}");
    println!("boundary constraints on Gamma1/Gamma2 verified.");
}
