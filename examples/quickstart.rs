//! Quickstart: solve paper Test Case 1 with all four parallel algebraic
//! preconditioners and print a paper-style comparison, plus the subdomain
//! point census of the paper's Figure 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parapre::core::{build_case, run_case, CaseId, CaseSize, PrecondKind, RunConfig};
use parapre::dist::DistMatrix;
use parapre::mpisim::Universe;
use parapre::partition::partition_graph;

fn main() {
    // A modest grid so the example runs in seconds; use CaseSize::Default
    // or Full for paper-scale runs.
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    println!("== {} ==", case.id.name());
    println!(
        "grid: {} ({} unknowns)\n",
        case.grid_desc,
        case.n_unknowns()
    );

    // --- Figure 1: internal / interdomain-interface / external-interface
    //     census of each subdomain under a 4-way general partition.
    let p = 4;
    let part = partition_graph(&case.node_adjacency, p, 1);
    println!("Figure-1 census under a {p}-way general partition:");
    println!(
        "{:>5} {:>10} {:>22} {:>20}",
        "rank", "internal", "interdomain interface", "external interface"
    );
    let owner = case.dof_owner(&part.owner);
    let a = &case.sys.a;
    let owner_ref = &owner;
    let census = Universe::run(p, move |comm| {
        let dm = DistMatrix::from_global(a, owner_ref, comm.rank(), p);
        (
            dm.layout.n_internal,
            dm.layout.n_interface,
            dm.layout.n_ghost,
        )
    });
    for (r, (ni, nf, ng)) in census.iter().enumerate() {
        println!("{r:>5} {ni:>10} {nf:>22} {ng:>20}");
    }

    // --- The four preconditioners of the study.
    println!("\nFGMRES(20), ||r||/||r0|| <= 1e-6, P = {p}:");
    println!(
        "{:>10} {:>6} {:>10} {:>12}",
        "precond", "#itr", "wall(s)", "modeled(s)"
    );
    for kind in PrecondKind::ALL {
        let res = run_case(&case, &RunConfig::paper(kind, p));
        println!(
            "{:>10} {:>6} {:>10.3} {:>12.3}",
            kind.label(),
            if res.converged {
                res.iterations.to_string()
            } else {
                "n.c.".into()
            },
            res.wall_seconds,
            res.modeled_seconds,
        );
    }
    println!("\nSee the table_* binaries in parapre-bench for the full paper tables.");
}
