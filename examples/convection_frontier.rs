//! Test Case 5 walkthrough: the convection-dominated transport problem
//! whose discontinuous inlet profile is carried along θ = π/4 (paper
//! Fig. 4). Solves the system in parallel with each preconditioner,
//! verifies the front, and renders an ASCII contour of the solution.
//!
//! ```text
//! cargo run --release --example convection_frontier
//! ```

use parapre::core::runner::{run_case, RunConfig};
use parapre::core::{build_case, CaseId, CaseSize, PrecondKind};
use parapre::dist::{gather_vector, scatter_vector, DistGmres, DistGmresConfig, DistMatrix};
use parapre::mpisim::Universe;
use parapre::partition::partition_graph;

fn main() {
    let case = build_case(CaseId::Tc5, CaseSize::Tiny);
    println!("== {} ==", case.id.name());
    println!("grid: {}\n", case.grid_desc);

    // Paper finding for this case: "the Schur 1 preconditioner is a clear
    // winner in the overall computational efficiency".
    println!("{:>10} {:>6} {:>10}", "precond", "#itr", "wall(s)");
    for kind in PrecondKind::ALL {
        let res = run_case(&case, &RunConfig::paper(kind, 4));
        println!(
            "{:>10} {:>6} {:>10.3}",
            kind.label(),
            if res.converged {
                res.iterations.to_string()
            } else {
                "n.c.".into()
            },
            res.wall_seconds
        );
    }

    // Solve once more, gathering the solution for visualization.
    let p = 4;
    let part = partition_graph(&case.node_adjacency, p, 1);
    let owner = case.dof_owner(&part.owner);
    let (a, b, x0) = (&case.sys.a, &case.sys.b, &case.x0);
    let owner_ref = &owner;
    let m_cfg = parapre::core::Schur1Config::default();
    let gathered = Universe::run(p, move |comm| {
        let dm = DistMatrix::from_global(a, owner_ref, comm.rank(), p);
        let m = parapre::core::Schur1Precond::build(&dm, m_cfg).expect("schur1 setup");
        let b_loc = scatter_vector(&dm.layout, b);
        let mut x = scatter_vector(&dm.layout, x0);
        let rep = DistGmres::new(DistGmresConfig::default()).solve(comm, &dm, &m, &b_loc, &mut x);
        assert!(rep.converged);
        gather_vector(comm, &dm.layout, &x, b.len())
    });
    let u = gathered[0].as_ref().expect("rank 0 gathers").clone();

    // ASCII contour: the sharp front starts at (0, 0.25) and runs at 45°.
    let nx = case.structured_dims.unwrap()[0];
    println!("\nsolution contour (#: u > 0.5, .: u <= 0.5); inlet on the left:");
    let step = (nx / 33).max(1);
    for j in (0..nx).rev().step_by(step) {
        let row: String = (0..nx)
            .step_by(step)
            .map(|i| if u[j * nx + i] > 0.5 { '#' } else { '.' })
            .collect();
        println!("  {row}");
    }
    // Sanity: upper-left carries the inlet value 1, lower-right stays 0.
    let at = |i: usize, j: usize| u[j * nx + i];
    assert!(at(1, nx - 2) > 0.7, "upper-left should be ~1");
    assert!(at(nx - 2, 1).abs() < 0.3, "lower-right should be ~0");
    println!(
        "\nfront verified: upper-left u = {:.3}, lower-right u = {:.3}",
        at(1, nx - 2),
        at(nx - 2, 1)
    );
}
