//! FEM verification: manufactured-solution convergence study for the
//! Poisson test cases, using the L²/H¹ error norms of `parapre-fem`.
//!
//! Confirms O(h²)/O(h) convergence of the P1 discretization that underlies
//! every experiment in the study — the "is the discretization right?"
//! check a reproduction should ship with.
//!
//! ```text
//! cargo run --release -p parapre --example convergence_study
//! ```

use parapre::core::{build_case_sized, CaseId};
use parapre::dist::{gather_vector, scatter_vector, DistGmres, DistGmresConfig, DistMatrix};
use parapre::fem::norms::error_norms_2d;
use parapre::fem::poisson;
use parapre::mpisim::Universe;
use parapre::partition::partition_graph;

fn solve_tc1(n: usize) -> (f64, f64) {
    let case = build_case_sized(CaseId::Tc1, n);
    let p = 4;
    let part = partition_graph(&case.node_adjacency, p, 1);
    let owner = case.dof_owner(&part.owner);
    let (a, b, x0) = (&case.sys.a, &case.sys.b, &case.x0);
    let owner_ref = &owner;
    let gathered = Universe::run(p, move |comm| {
        let dm = DistMatrix::from_global(a, owner_ref, comm.rank(), p);
        let m = parapre::core::Schur1Precond::build(&dm, Default::default()).unwrap();
        let b_loc = scatter_vector(&dm.layout, b);
        let mut x = scatter_vector(&dm.layout, x0);
        let rep = DistGmres::new(DistGmresConfig {
            rel_tol: 1e-10,
            ..Default::default()
        })
        .solve(comm, &dm, &m, &b_loc, &mut x);
        assert!(rep.converged);
        gather_vector(comm, &dm.layout, &x, b.len())
    });
    let u = gathered[0].as_ref().unwrap().clone();
    // Rebuild the mesh to evaluate the norms (same generator, same n).
    let mesh = parapre::grid::structured::unit_square(n, n);
    let e = error_norms_2d(&mesh, &u, poisson::exact_tc1, |x, y| [y.exp(), x * y.exp()]);
    (e.l2, e.h1_semi)
}

fn main() {
    println!("P1 convergence study, Test Case 1 (u = x e^y), distributed Schur 1 solves\n");
    println!(
        "{:>6} {:>12} {:>8} {:>12} {:>8}",
        "n", "L2 error", "rate", "H1 error", "rate"
    );
    let mut prev: Option<(f64, f64)> = None;
    for n in [9usize, 17, 33, 65] {
        let (l2, h1) = solve_tc1(n);
        let (r2, r1) = match prev {
            Some((pl2, ph1)) => ((pl2 / l2).log2(), (ph1 / h1).log2()),
            None => (f64::NAN, f64::NAN),
        };
        println!(
            "{:>6} {:>12.3e} {:>8.2} {:>12.3e} {:>8.2}",
            n, l2, r2, h1, r1
        );
        prev = Some((l2, h1));
    }
    println!("\nexpected asymptotic rates: L2 → 2.0, H1 → 1.0");
}
