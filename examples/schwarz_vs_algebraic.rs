//! Paper §5.2 in miniature: the additive-Schwarz preconditioner (overlap
//! ≈ 5 %, FFT-preconditioned CG subdomain solves) against the four
//! algebraic preconditioners on Test Case 1 — without coarse-grid
//! corrections the Schwarz iteration count grows "dangerously" with P;
//! with CGCs it beats everything.
//!
//! ```text
//! cargo run --release --example schwarz_vs_algebraic
//! ```

use parapre::core::runner::{run_case, RunConfig};
use parapre::core::{build_case, AdditiveSchwarz, CaseId, CaseSize, PrecondKind, SchwarzConfig};
use parapre::krylov::{Gmres, GmresConfig};

fn schwarz_iters(case: &parapre::core::AssembledCase, cfg: &SchwarzConfig) -> Option<usize> {
    let dims = case.structured_dims.unwrap();
    let m = AdditiveSchwarz::build(dims[0], dims[1], cfg);
    let mut x = case.x0.clone();
    let rep = Gmres::new(GmresConfig {
        max_iters: 800,
        ..Default::default()
    })
    .solve(&case.sys.a, &m, &case.sys.b, &mut x);
    rep.converged.then_some(rep.iterations)
}

fn main() {
    let case = build_case(CaseId::Tc1, CaseSize::Tiny);
    println!("== additive Schwarz vs algebraic preconditioners ==");
    println!("{} on {}\n", case.id.name(), case.grid_desc);

    println!(
        "{:>4} {:>16} {:>16}",
        "P", "Schwarz no-CGC", "Schwarz + CGC"
    );
    let mut growth = Vec::new();
    for p in [2usize, 4, 8, 16] {
        let no = schwarz_iters(&case, &SchwarzConfig::without_cgc(p));
        let yes = schwarz_iters(&case, &SchwarzConfig::with_cgc(p));
        growth.push(no.unwrap_or(usize::MAX));
        println!(
            "{:>4} {:>16} {:>16}",
            p,
            no.map_or("n.c.".into(), |i| i.to_string()),
            yes.map_or("n.c.".into(), |i| i.to_string())
        );
    }
    assert!(
        growth.last().unwrap() > growth.first().unwrap(),
        "no-CGC iteration count should grow with P"
    );

    println!("\nalgebraic preconditioners at P = 16 (same tolerance):");
    for kind in PrecondKind::ALL {
        let res = run_case(&case, &RunConfig::paper(kind, 16));
        println!(
            "{:>10}: {}",
            kind.label(),
            if res.converged {
                format!("{} iterations", res.iterations)
            } else {
                "n.c.".into()
            }
        );
    }
    println!("\npaper: with CGCs additive Schwarz converges faster than all four;");
    println!("without CGCs its growth with P is the worst of the lot.");
}
