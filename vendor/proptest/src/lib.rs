//! A minimal, dependency-free, API-compatible subset of the `proptest`
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides exactly the surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * strategies for integer and float ranges, tuples, [`any`], and
//!   [`collection::vec`];
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Differences from real proptest: generation is a deterministic
//! splitmix64 stream seeded from the test name, there is **no shrinking**,
//! and failures report the case index + seed instead of a minimized input.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type carried out of a failing property (mirrors
/// `proptest::test_runner::TestCaseError` loosely).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result alias used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream for one (test, case) pair.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        TestRng {
            state: test_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }
}

/// FNV-1a of the test name: a stable per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A value generator (no shrinking in this stub).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (retries a few times,
    /// then gives up and returns the last draw).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64 - self.start as i64).max(0) as u64;
                (self.start as i64 + rng.gen_range_u64(0, span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i64 - *self.start() as i64).max(0) as u64 + 1;
                (*self.start() as i64 + rng.gen_range_u64(0, span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded rather than bit-random: keeps numeric property tests
        // meaningful without NaN/Inf plumbing.
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (only `vec` is needed here).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of values from `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range_u64(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Fails the property with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), va, vb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), va
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Skips the current case when `cond` is false (counts as a pass here —
/// no retry bookkeeping in the stub).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// The property-test entry macro: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            #[test]
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(seed, case);
                    let result: $crate::TestCaseResult = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err($crate::TestCaseError(msg)) = result {
                        panic!(
                            "property '{}' failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, config.cases, seed, msg
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
