//! A minimal, dependency-free, API-compatible subset of the `criterion`
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides the surface the workspace's benches use: [`Criterion`],
//! benchmark groups with `sample_size` / `bench_with_input` /
//! `bench_function` / `finish`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs `sample_size`
//! timed samples (after one warm-up call) and reports min / median / mean
//! wall time per iteration on stdout. No plots, no statistics beyond that.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Placeholder for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        s.sort();
        let total: Duration = s.iter().sum();
        println!(
            "{}/{}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name,
            id,
            s[0],
            s[s.len() / 2],
            total / s.len() as u32,
            s.len()
        );
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), &mut f);
        self
    }

    /// Ends the group (a report separator in this stub).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// API-compat hook; the stub takes no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a plain closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        let mut s = b.samples;
        if !s.is_empty() {
            s.sort();
            println!("{}: median {:?} ({} samples)", id, s[s.len() / 2], s.len());
        }
        self
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
